package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPivotAblationSmall(t *testing.T) {
	res := RunPivotAblation(PivotAblationConfig{
		TrainSize: 80, QueryCount: 15, Pivots: []int{5, 15}, Seed: 9,
	}, nil)
	if len(res.Strategies) != 3 || len(res.Pivots) != 2 {
		t.Fatalf("shape = %v x %v", res.Strategies, res.Pivots)
	}
	for si := range res.Strategies {
		for pi := range res.Pivots {
			c := res.AvgComps[si][pi]
			if c <= 0 || c > 80 {
				t.Errorf("%s pivots=%d comps=%v out of range", res.Strategies[si], res.Pivots[pi], c)
			}
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pivot selection") {
		t.Error("render missing title")
	}
}

func TestRunSearcherAblationSmall(t *testing.T) {
	res := RunSearcherAblation(SearcherAblationConfig{
		TrainSize: 100, QueryCount: 20, Pivots: 10, Seed: 10,
	}, nil)
	if len(res.Names) != 6 {
		t.Fatalf("names = %v", res.Names)
	}
	for i, n := range res.Names {
		if res.AvgComps[i] <= 0 {
			t.Errorf("%s: no computations", n)
		}
		// All structures are exact under the metric dE.
		if !res.ExactMatch[i] {
			t.Errorf("%s did not match exhaustive search", n)
		}
	}
	// AESA must use the fewest query computations; linear the most.
	byName := map[string]float64{}
	for i, n := range res.Names {
		byName[n] = res.AvgComps[i]
	}
	if byName["aesa"] > byName["linear"] {
		t.Errorf("AESA (%v) should beat linear (%v)", byName["aesa"], byName["linear"])
	}
	if byName["laesa"] > byName["linear"] {
		t.Errorf("LAESA (%v) should beat linear (%v)", byName["laesa"], byName["linear"])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "search structures") {
		t.Error("render missing title")
	}
}

func TestRunExactVsHeuristicSmall(t *testing.T) {
	res := RunExactVsHeuristic(ExactVsHeuristicConfig{
		Lengths: []int{8, 48}, PairsPerLength: 10, Seed: 11,
	}, nil)
	if len(res.Lengths) != 2 {
		t.Fatalf("lengths = %v", res.Lengths)
	}
	for i := range res.Lengths {
		if res.ExactNanos[i] <= 0 || res.HeurNanos[i] <= 0 || res.WindowNanos[i] <= 0 {
			t.Errorf("length %d: non-positive timings", res.Lengths[i])
		}
		if res.Agreement[i] < 0 || res.Agreement[i] > 1 {
			t.Errorf("agreement out of range: %v", res.Agreement[i])
		}
		// The windowed variant can never agree less often than the
		// heuristic: it evaluates a superset of edit lengths.
		if res.WindowAgreement[i] < res.Agreement[i]-1e-12 {
			t.Errorf("window agreement %v below heuristic agreement %v",
				res.WindowAgreement[i], res.Agreement[i])
		}
	}
	// At length 48 the cubic algorithm is reliably much slower than the
	// quadratic heuristic, timing noise notwithstanding.
	if res.ExactNanos[1] < 2*res.HeurNanos[1] {
		t.Errorf("exact (%v ns) should be well above heuristic (%v ns) at length 48",
			res.ExactNanos[1], res.HeurNanos[1])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact dC") {
		t.Error("render missing title")
	}
}

func TestRunFig5(t *testing.T) {
	res := RunFig5(Fig5Config{Classes: []int{8, 0}, PerClass: 2, Grid: 20, Seed: 8}, nil)
	if len(res.Images) != 4 || len(res.Contours) != 4 {
		t.Fatalf("expected 2 samples x 2 classes, got %d images", len(res.Images))
	}
	for i, im := range res.Images {
		if im.Label != 8 && im.Label != 0 {
			t.Errorf("image %d label = %d", i, im.Label)
		}
		if im.String() == "(blank)" {
			t.Errorf("image %d blank", i)
		}
		if len(res.Contours[i]) < 4 {
			t.Errorf("contour %d too short", i)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "#") {
		t.Error("render missing art")
	}
}
