// Package analysistest runs an analyzer over source fixtures and checks
// its diagnostics against expectations written in the fixtures themselves —
// the offline, stdlib-only counterpart of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	// want "regexp"
//
// (one quoted or backquoted regexp per expected diagnostic; several may
// follow one want). Runs fail on diagnostics with no matching want and on
// wants with no matching diagnostic, so every fixture is simultaneously a
// positive and a negative test. Imports inside fixtures resolve against
// sibling fixture directories first (testdata/src/metric stands in for
// ced/internal/metric — analyzers match package paths by suffix for exactly
// this reason) and against the standard library otherwise.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ced/internal/analysis"
)

// fixtureImporter resolves fixture imports: a sibling fixture package when
// testdata/src/<path> exists, the standard library otherwise.
type fixtureImporter struct {
	fset   *token.FileSet
	std    types.ImporterFrom
	srcDir string
	pkgs   map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	pdir := filepath.Join(fi.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(pdir); err != nil || !st.IsDir() {
		return fi.std.ImportFrom(path, dir, mode)
	}
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	files, err := parseFixtureDir(fi.fset, pdir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fi.fset, files, nil)
	if err != nil {
		return nil, err
	}
	fi.pkgs[path] = pkg
	return pkg, nil
}

func parseFixtureDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no fixture files", dir)
	}
	return files, nil
}

// expectation is one want comment: a diagnostic matching rx on line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the want expectations from a file's comments.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(m[1])
			for rest != "" {
				var lit string
				switch rest[0] {
				case '"':
					end := strings.Index(rest[1:], `"`)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
					}
					lit = rest[:end+2]
					rest = strings.TrimSpace(rest[end+2:])
				case '`':
					end := strings.Index(rest[1:], "`")
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %s", pos, rest)
					}
					lit = rest[:end+2]
					rest = strings.TrimSpace(rest[end+2:])
				default:
					t.Fatalf("%s: malformed want pattern: %s", pos, rest)
				}
				pat, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
			}
		}
	}
	return wants
}

// Run type-checks each fixture package (testdata/src/<pattern>), applies
// the analyzer and verifies its diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset := token.NewFileSet()
	fi := &fixtureImporter{
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		srcDir: filepath.Join(testdata, "src"),
		pkgs:   map[string]*types.Package{},
	}
	for _, pattern := range patterns {
		dir := filepath.Join(fi.srcDir, filepath.FromSlash(pattern))
		files, err := parseFixtureDir(fset, dir)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: fi}
		tpkg, err := conf.Check(pattern, fset, files, info)
		if err != nil {
			t.Fatalf("%s: type-checking fixture: %v", pattern, err)
		}
		pkg := &analysis.Package{
			Path: pattern, Dir: dir, Fset: fset,
			Files: files, Types: tpkg, TypesInfo: info,
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("%s: running %s: %v", pattern, a.Name, err)
		}

		var wants []*expectation
		for _, f := range files {
			wants = append(wants, parseWants(t, fset, f)...)
		}
		for _, d := range diags {
			found := false
			for _, w := range wants {
				if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: unexpected diagnostic: %s", pattern, d)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pattern, w.file, w.line, w.rx)
			}
		}
	}
}
