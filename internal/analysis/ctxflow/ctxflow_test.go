package ctxflow_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
