// Package a exercises the ctxflow analyzer: handlers must derive from
// r.Context(), and timer-driven loops must honour cancellation.
package a

import (
	"context"
	"net/http"
	"time"
)

func work(ctx context.Context) { _ = ctx }
func step() bool               { return false }
func out() chan<- int          { return nil }
func results() <-chan int      { return nil }

// handler derives its context from the request: the sanctioned shape.
func handler(w http.ResponseWriter, r *http.Request) {
	work(r.Context())
}

// detached fabricates a fresh root mid-request, so the downstream work
// outlives the caller's deadline and disconnect.
func detached(w http.ResponseWriter, r *http.Request) {
	work(context.Background()) // want `context.Background inside an HTTP handler`
}

// todoRoot is the same hazard spelled TODO.
func todoRoot(w http.ResponseWriter, r *http.Request) {
	work(context.TODO()) // want `context.TODO inside an HTTP handler`
}

// literalHandler checks func-literal handlers registered on a mux.
func literalHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		work(context.Background()) // want `context.Background inside an HTTP handler`
	})
	return mux
}

// waivedHandler is a reviewed exception.
func waivedHandler(w http.ResponseWriter, r *http.Request) {
	work(context.Background()) //ced:ctxflow-ok: detached audit write must survive the request.
}

// notHandler has no request in scope; fresh roots are fine here.
func notHandler() {
	work(context.Background())
}

// pollNoDone spins on its timer with no escape: after ctx is cancelled the
// loop keeps firing until the caller kills the process.
func pollNoDone(ctx context.Context) {
	for {
		select { // want `timer-driven select in a loop .* no <-ctx.Done\(\) arm`
		case <-time.After(time.Millisecond):
			if step() {
				return
			}
		}
	}
}

// tickNoDone is the same hole through a Ticker's C field.
func tickNoDone(ctx context.Context, t *time.Ticker) {
	for {
		select { // want `timer-driven select in a loop .* no <-ctx.Done\(\) arm`
		case <-t.C:
			if step() {
				return
			}
		}
	}
}

// pollDone gives cancellation a way out: the sanctioned retry shape.
func pollDone(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
			if step() {
				return
			}
		}
	}
}

// handlerPoll: handlers count as having a context in scope (r.Context()).
func handlerPoll(w http.ResponseWriter, r *http.Request) {
	for {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// selectNoTimer has no timer arm; nothing to flag even without Done.
func selectNoTimer(ctx context.Context) {
	for {
		select {
		case out() <- 1:
		case <-results():
			return
		}
	}
}

// selectOutsideLoop runs once; a missing Done arm cannot spin.
func selectOutsideLoop(ctx context.Context) {
	select {
	case <-time.After(time.Millisecond):
	}
}

// noCtxParam has no context to honour; its stop channel is its own law.
func noCtxParam(stop chan struct{}, t *time.Ticker) {
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// waivedPoll is a reviewed exception (bounded by the step counter).
func waivedPoll(ctx context.Context) {
	for i := 0; i < 3; i++ {
		select { //ced:ctxflow-ok: at most three one-millisecond waits.
		case <-time.After(time.Millisecond):
		}
	}
}
