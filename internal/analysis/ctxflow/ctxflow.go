// Package ctxflow keeps the cancellation chain unbroken from the HTTP edge
// to the scan loops. The serving stack threads one context end to end —
// request → engine → shard fan-out → searcher checkpoints — and that chain
// is only as strong as its weakest link. Two links break silently:
//
//   - An HTTP handler that calls context.Background() or context.TODO()
//     fabricates a fresh root mid-request, detaching everything downstream
//     from the caller's deadline and disconnect. The work keeps running
//     after the client is gone — exactly the leak the hedged-read fix and
//     the cancel checkpoints exist to prevent. Handlers must derive from
//     r.Context() (serve.RequestContext does, folding in the budget
//     header).
//
//   - A timer-driven select inside a retry/poll loop that has a context in
//     scope but no <-ctx.Done() arm spins on after cancellation, holding
//     its goroutine (and often a connection or pool slot) until the timer
//     chain runs dry. Every such select must give cancellation a way out.
//
// //ced:ctxflow-ok on the offending line waives a reviewed exception (for
// example a deliberately detached audit write).
package ctxflow

import (
	"go/ast"
	"go/types"

	"ced/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "keep request contexts flowing: no context.Background()/TODO() " +
		"inside HTTP handlers (derive from r.Context()), and every " +
		"timer-driven select in a loop with a context in scope must carry " +
		"a <-ctx.Done() arm (//ced:ctxflow-ok waives a reviewed line)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, body = n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			handler := isHandlerFunc(pass, ft)
			hasCtx := handler || hasContextParam(pass, ft)
			if !handler && !hasCtx {
				return true
			}
			checkFunc(pass, body, handler, hasCtx)
			return true
		})
	}
	return nil
}

// checkFunc walks one function body, stopping at nested function literals
// (each literal is visited with its own signature by run).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, handler, hasCtx bool) {
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if handler {
				checkFreshRoot(pass, n)
			}
		case *ast.SelectStmt:
			if hasCtx && inLoop(stack) {
				checkTimerSelect(pass, n)
			}
		}
		return true
	})
}

// isHandlerFunc reports whether ft has the http.HandlerFunc parameter
// shape: an http.ResponseWriter and a *http.Request.
func isHandlerFunc(pass *analysis.Pass, ft *ast.FuncType) bool {
	var w, r bool
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		w = w || analysis.IsPkgType(t, "net/http", "ResponseWriter")
		r = r || analysis.IsPkgType(t, "net/http", "Request")
	}
	return w && r
}

// hasContextParam reports whether ft takes a context.Context.
func hasContextParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	for _, field := range ft.Params.List {
		if analysis.IsPkgType(pass.TypesInfo.TypeOf(field.Type), "context", "Context") {
			return true
		}
	}
	return false
}

// checkFreshRoot flags context.Background() / context.TODO() inside a
// handler.
func checkFreshRoot(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "context" {
		return
	}
	if pass.LineMarked(call.Pos(), "ctxflow-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s inside an HTTP handler detaches downstream work from the "+
			"request's deadline and disconnect; derive from r.Context() "+
			"(serve.RequestContext folds in the budget header)", sel.Sel.Name)
}

// inLoop reports whether any ancestor is a for/range statement.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// checkTimerSelect flags a select with a timer arm but no Done arm.
func checkTimerSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	var timer, done bool
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		recv := receivedExpr(comm.Comm)
		if recv == nil {
			continue
		}
		timer = timer || isTimeChan(pass, recv)
		done = done || isDoneCall(pass, recv)
	}
	if !timer || done {
		return
	}
	if pass.LineMarked(sel.Pos(), "ctxflow-ok") {
		return
	}
	pass.Reportf(sel.Pos(),
		"timer-driven select in a loop with a context in scope but no "+
			"<-ctx.Done() arm: after cancellation the loop spins until its "+
			"timers run dry; add a case <-ctx.Done()")
}

// receivedExpr extracts the channel expression of a comm clause's receive
// (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for sends and defaults.
func receivedExpr(comm ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
		return u.X
	}
	return nil
}

// isTimeChan reports whether expr is a channel of time.Time — the shape of
// time.After's result and the C fields of time.Timer and time.Ticker.
func isTimeChan(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	ch, ok := types.Unalias(t).(*types.Chan)
	if !ok {
		return false
	}
	return analysis.IsPkgType(ch.Elem(), "time", "Time")
}

// isDoneCall reports whether expr is ctx.Done() for a context.Context ctx.
func isDoneCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || analysis.CalleeName(call) != "Done" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgType(pass.TypesInfo.TypeOf(sel.X), "context", "Context")
}
