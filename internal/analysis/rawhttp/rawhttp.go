// Package rawhttp keeps every listening HTTP server on the hardened path
// established by cmd/cedserve's runServer: an explicit http.Server literal
// with a ReadHeaderTimeout (plus read/write/idle timeouts) and a graceful
// Shutdown. The package-level convenience entry points — http.ListenAndServe
// and friends — ship with no timeouts at all, so a slow-loris client can
// pin a connection forever; they are banned outright, and a zero-value or
// timeout-less http.Server literal is flagged as the same hazard spelled
// differently. httptest servers used in tests are unaffected.
package rawhttp

import (
	"go/ast"
	"go/types"

	"ced/internal/analysis"
)

// Analyzer is the rawhttp pass.
var Analyzer = &analysis.Analyzer{
	Name: "rawhttp",
	Doc: "forbid net/http's package-level serve helpers and http.Server " +
		"literals without a ReadHeaderTimeout; serve through a hardened, " +
		"shutdown-capable http.Server as in cedserve's runServer " +
		"(//ced:rawhttp-ok waives a reviewed line)",
	Run: run,
}

// bannedFuncs are the net/http package-level entry points with no timeout
// protection.
var bannedFuncs = map[string]bool{
	"ListenAndServe":    true,
	"ListenAndServeTLS": true,
	"Serve":             true,
	"ServeTLS":          true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.CompositeLit:
				checkServerLiteral(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBannedCall flags net/http package-level serve functions.
func checkBannedCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !bannedFuncs[sel.Sel.Name] {
		return
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "net/http" {
		return
	}
	if pass.LineMarked(call.Pos(), "rawhttp-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"http.%s has no timeouts and no shutdown hook: build an http.Server with "+
			"ReadHeaderTimeout and serve it with graceful shutdown (see cedserve runServer)",
		sel.Sel.Name)
}

// checkServerLiteral flags http.Server composite literals that omit
// ReadHeaderTimeout, the minimum slow-loris defence.
func checkServerLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named := analysis.NamedOf(tv.Type)
	if named == nil || named.Obj().Name() != "Server" || !analysis.IsPkgType(named, "net/http", "Server") {
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "ReadHeaderTimeout" {
				return
			}
		}
	}
	if pass.LineMarked(lit.Pos(), "rawhttp-ok") {
		return
	}
	pass.Reportf(lit.Pos(),
		"http.Server literal without ReadHeaderTimeout: a slow-loris client can hold "+
			"header reads open forever; set ReadHeaderTimeout (and read/write/idle timeouts) "+
			"as in cedserve runServer")
}
