package rawhttp_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/rawhttp"
)

func TestRawHTTP(t *testing.T) {
	analysistest.Run(t, "testdata", rawhttp.Analyzer, "a")
}
