// Package a exercises the rawhttp analyzer: no raw serve helpers, no
// timeout-less server literals.
package a

import (
	"context"
	"net/http"
	"time"
)

// rawListen uses the banned convenience entry point.
func rawListen(h http.Handler) error {
	return http.ListenAndServe(":8080", h) // want `http.ListenAndServe has no timeouts`
}

// rawTLS does the same over TLS.
func rawTLS(h http.Handler) error {
	return http.ListenAndServeTLS(":8443", "cert", "key", h) // want `http.ListenAndServeTLS has no timeouts`
}

// bareServer builds a server with no slow-loris defence.
func bareServer(h http.Handler) *http.Server {
	return &http.Server{Addr: ":8080", Handler: h} // want `http.Server literal without ReadHeaderTimeout`
}

// hardened mirrors cedserve's runServer.
func hardened(h http.Handler) *http.Server {
	return &http.Server{
		Addr:              ":8080",
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// shutdown drives the hardened server with a graceful stop, the full
// sanctioned shape.
func shutdown(ctx context.Context, h http.Handler) error {
	srv := hardened(h)
	go srv.ListenAndServe()
	<-ctx.Done()
	return srv.Shutdown(context.Background())
}

// waived is a reviewed exception (e.g. a throwaway debug listener).
func waived(h http.Handler) error {
	return http.ListenAndServe("127.0.0.1:0", h) //ced:rawhttp-ok: loopback-only debug listener.
}
