// Package poolleak enforces the pooled-workspace release discipline of the
// PR-2/PR-4 kernel: scratch acquired from a sync.Pool (or through a
// checkout helper such as core's pooled workspaces or LAESA's per-query
// scratch) must be released by a *deferred* call in the same function, so a
// panic on any path — the exact bug the PR-4 withWorkspace hardening fixed —
// cannot leak the buffer or poison the pool.
package poolleak

import (
	"go/ast"
	"strings"

	"ced/internal/analysis"
)

// Analyzer is the poolleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolleak",
	Doc: "pooled scratch must be released via defer on every path: a function " +
		"that calls (sync.Pool).Get, getWorkspace or a checkout* helper needs a " +
		"deferred Put/Release/release in the same body (or a //ced:poolleak-ok " +
		"func doc when ownership is handed to the caller by contract)",
	Run: run,
}

// releaseNames are the method/function names accepted as a pool release.
var releaseNames = map[string]bool{
	"Put": true, "put": true,
	"Release": true, "release": true,
	"putWorkspace": true,
}

// acquiringCall reports whether call checks scratch out of a pool: a Get on
// a sync.Pool value, or a call to a named checkout helper.
func acquiringCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := analysis.CalleeName(call)
	if name == "getWorkspace" || strings.HasPrefix(name, "checkout") {
		return true
	}
	if name != "Get" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsPkgType(tv.Type, "sync", "Pool")
}

// releasesInDefer reports whether stmt is a defer whose call — directly or
// anywhere inside a deferred func literal — releases to a pool.
func releasesInDefer(stmt ast.Stmt) bool {
	def, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(def.Call, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && releaseNames[analysis.CalleeName(call)] {
			found = true
		}
		return !found
	})
	return found
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.HasMarker(fn.Doc, "poolleak-ok") {
				continue
			}
			var acquires []*ast.CallExpr
			hasDeferredRelease := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// A nested literal owns its own acquisitions; the
					// enclosing function is judged on its own body. (Deferred
					// literals were already credited by releasesInDefer.)
					return false
				case *ast.CallExpr:
					if acquiringCall(pass, n) {
						acquires = append(acquires, n)
					}
				case ast.Stmt:
					if releasesInDefer(n) {
						hasDeferredRelease = true
					}
				}
				return true
			})
			if hasDeferredRelease {
				continue
			}
			for _, call := range acquires {
				pass.Reportf(call.Pos(),
					"pooled scratch acquired by %s without a deferred release in %s; "+
						"release via defer so a panic cannot leak it (or mark the func //ced:poolleak-ok)",
					describe(call), fn.Name.Name)
			}
		}
	}
	return nil
}

func describe(call *ast.CallExpr) string {
	if name := analysis.CalleeName(call); name != "" {
		return name
	}
	return "a pool checkout"
}
