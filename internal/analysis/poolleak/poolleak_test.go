package poolleak_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/poolleak"
)

func TestPoolLeak(t *testing.T) {
	analysistest.Run(t, "testdata", poolleak.Analyzer, "a")
}
