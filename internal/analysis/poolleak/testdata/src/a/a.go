// Package a exercises the poolleak analyzer: pooled scratch must be
// released by a deferred call in the acquiring function.
package a

import "sync"

type scratch struct{ buf []int }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// leaky gets scratch and releases it on the happy path only: a panic in
// work() leaks the buffer — the PR-4 bug, as a lint.
func leaky() {
	s := pool.Get().(*scratch) // want `pooled scratch acquired by Get without a deferred release in leaky`
	work(s)
	pool.Put(s)
}

// earlyReturn releases on one path and forgets the error path.
func earlyReturn(fail bool) error {
	s := pool.Get().(*scratch) // want `pooled scratch acquired by Get without a deferred release in earlyReturn`
	if fail {
		return errFail
	}
	work(s)
	pool.Put(s)
	return nil
}

// deferred is the required idiom: the release survives panics and early
// returns alike.
func deferred() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	work(s)
}

// deferredClosure releases inside a deferred func literal, which also
// counts.
func deferredClosure() {
	s := pool.Get().(*scratch)
	defer func() { pool.Put(s) }()
	work(s)
}

// checkoutScratch mirrors the LAESA checkout helper: it hands ownership to
// the caller, which the annotation declares.
//
//ced:poolleak-ok: the caller releases via defer.
func checkoutScratch() *scratch {
	return pool.Get().(*scratch)
}

// caller uses the checkout helper correctly.
func caller() {
	s := checkoutScratch()
	defer pool.Put(s)
	work(s)
}

// callerLeaks uses the checkout helper without a deferred release.
func callerLeaks() {
	s := checkoutScratch() // want `pooled scratch acquired by checkoutScratch without a deferred release in callerLeaks`
	work(s)
	pool.Put(s)
}

// withScratch mirrors core.withWorkspace, the canonical round-trip.
func withScratch(fn func(*scratch)) {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	fn(s)
}

func work(*scratch) {}

var errFail error

// checkoutBatchScratch mirrors the batched-kernel checkout: one scratch
// serves a whole candidate batch, and ownership moves to the caller.
//
//ced:poolleak-ok: the caller releases via defer.
func checkoutBatchScratch(n int) *scratch {
	s := pool.Get().(*scratch)
	if cap(s.buf) < n {
		s.buf = make([]int, n)
	}
	return s
}

// batchLeaky checks scratch out for a whole batch and releases only after
// the loop: a panic on any candidate leaks it.
func batchLeaky(cands [][]int) {
	s := checkoutBatchScratch(len(cands)) // want `pooled scratch acquired by checkoutBatchScratch without a deferred release in batchLeaky`
	for range cands {
		work(s)
	}
	pool.Put(s)
}

// batchDeferred is the batched idiom: one checkout and one deferred
// release bracket the whole batch, however many candidates it holds.
func batchDeferred(cands [][]int) {
	s := checkoutBatchScratch(len(cands))
	defer pool.Put(s)
	for range cands {
		work(s)
	}
}
