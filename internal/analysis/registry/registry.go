// Package registry enumerates the cedvet analyzer suite in one place, so
// the cmd/cedvet binary and the in-process CI test run the same checks.
package registry

import (
	"ced/internal/analysis"
	"ced/internal/analysis/atomicsnap"
	"ced/internal/analysis/boundconv"
	"ced/internal/analysis/ctxflow"
	"ced/internal/analysis/poolleak"
	"ced/internal/analysis/rawhttp"
	"ced/internal/analysis/sessionshare"
	"ced/internal/analysis/stagecount"
)

// All returns the full cedvet suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicsnap.Analyzer,
		boundconv.Analyzer,
		ctxflow.Analyzer,
		poolleak.Analyzer,
		rawhttp.Analyzer,
		sessionshare.Analyzer,
		stagecount.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
