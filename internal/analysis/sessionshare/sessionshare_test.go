package sessionshare_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/sessionshare"
)

func TestSessionShare(t *testing.T) {
	analysistest.Run(t, "testdata", sessionshare.Analyzer, "a")
}
