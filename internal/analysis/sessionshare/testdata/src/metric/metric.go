// Package metric is a fixture standing in for ced/internal/metric: the
// sessionshare analyzer matches package paths by suffix, so this "metric"
// plays the real one.
package metric

// Metric is the fixture distance interface.
type Metric interface {
	Distance(a, b []rune) float64
}

type session struct{ scratch []int }

func (s *session) Distance(a, b []rune) float64 { return float64(len(s.scratch)) }

// Sessioner mints per-goroutine sessions.
type Sessioner struct{}

// Session returns a private, non-concurrency-safe evaluator.
func (Sessioner) Session() Metric { return &session{} }
