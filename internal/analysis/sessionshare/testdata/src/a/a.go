// Package a exercises the sessionshare analyzer: sessions are
// per-goroutine and must not leak across goroutine boundaries.
package a

import (
	"sync"

	"metric"
)

var m metric.Sessioner

// captured leaks a session into a go closure declared around it.
func captured() {
	s := m.Session()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Distance(nil, nil) // want `session s captured by a go closure`
	}()
	wg.Wait()
}

// handed passes a session into a goroutine as an argument.
func handed() {
	s := m.Session()
	go work(s) // want `session s handed to a go call`
}

// sent ships a session over a channel.
func sent(ch chan metric.Metric) {
	s := m.Session()
	ch <- s // want `session s sent on a channel`
}

// waived is a reviewed handoff.
func waived(ch chan metric.Metric) {
	s := m.Session()
	ch <- s //ced:sessionshare-ok: receiver is the sole user by construction.
}

// perWorker is the sanctioned idiom: each goroutine mints its own session.
func perWorker() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.Session()
			s.Distance(nil, nil)
		}()
	}
	wg.Wait()
}

// fanWorker mirrors bulk.Evaluator.FanWorker: sessions[w] flows to worker w
// through an ordinary call into a fan primitive, which the per-worker
// striping contract confines. Plain calls are not flagged.
func fanWorker(n int) {
	workers := 4
	sessions := make([]metric.Metric, workers)
	for w := range sessions {
		sessions[w] = m.Session()
	}
	fan(n, workers, func(w, i int) {
		sessions[w].Distance(nil, nil)
	})
}

// fan is a stand-in for pool.FanWorker.
func fan(n, workers int, fn func(w, i int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

func work(s metric.Metric) { s.Distance(nil, nil) }
