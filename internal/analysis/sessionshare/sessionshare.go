// Package sessionshare enforces the per-worker session confinement of the
// PR-3 bulk layer: a metric session minted by a Session() call (see
// metric.Sessioner) holds private scratch memory and is not safe for
// concurrent use, so it must never be captured by a go-launched closure or
// sent on a channel. The sanctioned plumbing — bulk.Evaluator handing
// sessions[w] to worker w inside pool.FanWorker — passes sessions through
// ordinary calls, which this analyzer deliberately leaves alone.
package sessionshare

import (
	"go/ast"
	"go/types"

	"ced/internal/analysis"
)

// Analyzer is the sessionshare pass.
var Analyzer = &analysis.Analyzer{
	Name: "sessionshare",
	Doc: "a metric session (minted by a Session() call) is per-goroutine by " +
		"contract: it must not be captured by a `go` closure declared around it " +
		"and must not be sent on a channel (//ced:sessionshare-ok waives a " +
		"reviewed handoff)",
	Run: run,
}

// sessionVars collects, per function body, the objects of variables bound
// directly to the result of a Session() call.
func sessionVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || analysis.CalleeName(call) != "Session" {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			vars[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			vars[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					bind(name, n.Values[i])
				}
			}
		}
		return true
	})
	return vars
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			vars := sessionVars(pass, fn.Body)
			if len(vars) == 0 {
				continue
			}
			analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					checkGo(pass, n, vars)
					// The go statement's subtree was fully handled.
					return false
				case *ast.SendStmt:
					if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && vars[pass.TypesInfo.Uses[id]] {
						if !pass.LineMarked(n.Pos(), "sessionshare-ok") {
							pass.Reportf(n.Pos(),
								"session %s sent on a channel: sessions hold per-goroutine scratch and must stay "+
									"confined to the worker that minted them", id.Name)
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkGo flags session variables that cross into a new goroutine: free
// variables of a `go func(){...}()` literal, and session arguments of any
// `go f(args...)` call. A session declared inside the literal belongs to
// the new goroutine and is fine.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, vars map[types.Object]bool) {
	lit, _ := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	report := func(id *ast.Ident, how string) {
		if pass.LineMarked(id.Pos(), "sessionshare-ok") || pass.LineMarked(g.Pos(), "sessionshare-ok") {
			return
		}
		pass.Reportf(id.Pos(),
			"session %s %s: sessions hold per-goroutine scratch and must not be shared across "+
				"goroutines (mint one per worker, e.g. via bulk.Evaluator)", id.Name, how)
	}
	for _, arg := range g.Call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && vars[pass.TypesInfo.Uses[id]] {
				report(id, "handed to a go call")
			}
			return true
		})
	}
	if lit == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !vars[obj] {
			return true
		}
		// Declared inside the literal: confined to the new goroutine.
		if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
			return true
		}
		report(id, "captured by a go closure")
		return true
	})
}
