package boundconv_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/boundconv"
)

func TestBoundConv(t *testing.T) {
	analysistest.Run(t, "testdata", boundconv.Analyzer, "a")
}
