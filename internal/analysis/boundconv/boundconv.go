// Package boundconv enforces the wire encoding of pruning bounds
// introduced with the PR-6 remote shard transport: JSON cannot carry IEEE
// infinities, so an unbounded (+Inf) pruning radius travels as a negative
// number and exists ONLY on the wire. Locally, bounds are always plain
// radii with +Inf meaning "none" — so a negative literal handed to a local
// bounded entry point (KNearestBounded, ComputeBounded, ...) is a smuggled
// wire value that would reject every candidate, and a wire struct's Bound
// field may be produced only by wireBound and consumed only by
// fromWireBound, never compared or computed with while still encoded.
package boundconv

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ced/internal/analysis"
)

// Analyzer is the boundconv pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundconv",
	Doc: "negative pruning bounds mean +Inf only in the wire encoding: local " +
		"bounded calls must receive math.Inf(1), and a wire request's Bound field " +
		"must be written via wireBound and read via fromWireBound only " +
		"(//ced:boundconv-ok waives a reviewed line)",
	Run: run,
}

// boundedCallees take the pruning bound/cutoff as their LAST argument.
var boundedCallees = map[string]bool{
	"KNearestBounded":       true,
	"ComputeBounded":        true,
	"ComputeBoundedStaged":  true,
	"DistanceBounded":       true,
	"DistanceBoundedStaged": true,
	"DistanceStaged":        true,
	"NewMergerBounded":      true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkNegativeLiteral(pass, n)
				case *ast.SelectorExpr:
					checkWireField(pass, n, stack)
				case *ast.CompositeLit:
					checkWireLiteral(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkNegativeLiteral flags a negative constant passed as the bound.
func checkNegativeLiteral(pass *analysis.Pass, call *ast.CallExpr) {
	if !boundedCallees[analysis.CalleeName(call)] || len(call.Args) == 0 || call.Ellipsis.IsValid() {
		return
	}
	arg := call.Args[len(call.Args)-1]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return
	}
	if constant.Sign(tv.Value) >= 0 || pass.LineMarked(arg.Pos(), "boundconv-ok") {
		return
	}
	pass.Reportf(arg.Pos(),
		"negative bound %s passed to %s: negative means +Inf only in the wire encoding; "+
			"pass math.Inf(1) locally (decode wire bounds with fromWireBound first)",
		tv.Value, analysis.CalleeName(call))
}

// wireRequestField reports whether sel reads a field named Bound on a
// *Request wire struct.
func wireRequestField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Bound" {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	n := analysis.NamedOf(s.Recv())
	return n != nil && strings.HasSuffix(n.Obj().Name(), "Request")
}

// checkWireField validates every use of a wire request's Bound field:
// reads must flow straight into fromWireBound; writes must come straight
// from wireBound.
func checkWireField(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	if !wireRequestField(pass, sel) || pass.LineMarked(sel.Pos(), "boundconv-ok") {
		return
	}
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	// Unwrap parens around the selector.
	for len(stack) > 1 {
		p, ok := parent.(*ast.ParenExpr)
		if !ok || p.X != sel {
			break
		}
		stack = stack[:len(stack)-1]
		parent = stack[len(stack)-1]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if analysis.CalleeName(p) == "fromWireBound" && len(p.Args) == 1 {
			return // the canonical decode
		}
	case *ast.AssignStmt:
		for i, lhs := range p.Lhs {
			if ast.Unparen(lhs) == sel {
				if i < len(p.Rhs) && len(p.Lhs) == len(p.Rhs) {
					if call, ok := ast.Unparen(p.Rhs[i]).(*ast.CallExpr); ok && analysis.CalleeName(call) == "wireBound" {
						return // the canonical encode
					}
				}
				pass.Reportf(sel.Pos(),
					"wire bound field %s.%s written without wireBound: encode with wireBound so +Inf "+
						"becomes the negative sentinel", exprString(sel.X), sel.Sel.Name)
				return
			}
		}
	}
	pass.Reportf(sel.Pos(),
		"wire bound field %s.%s used while still encoded (negative = +Inf): decode with "+
			"fromWireBound before comparing or computing with it", exprString(sel.X), sel.Sel.Name)
}

// checkWireLiteral validates Bound keys in wire request composite
// literals: the value must be a wireBound call.
func checkWireLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	n := analysis.NamedOf(tv.Type)
	if n == nil || !strings.HasSuffix(n.Obj().Name(), "Request") {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Bound" || pass.LineMarked(kv.Pos(), "boundconv-ok") {
			continue
		}
		if call, ok := ast.Unparen(kv.Value).(*ast.CallExpr); ok && analysis.CalleeName(call) == "wireBound" {
			continue
		}
		pass.Reportf(kv.Pos(),
			"wire bound field %s.Bound set without wireBound: encode with wireBound so +Inf "+
				"becomes the negative sentinel", n.Obj().Name())
	}
}

func exprString(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "request"
}
