// Package a exercises the boundconv analyzer: negative bounds exist only
// in the wire encoding, where they stand for +Inf.
package a

import "math"

// knnRequest mirrors the wire struct in ced/internal/remote.
type knnRequest struct {
	Query string
	K     int
	Bound float64
}

const noBound = -1

func wireBound(b float64) float64 {
	if math.IsInf(b, 1) {
		return noBound
	}
	return b
}

func fromWireBound(b float64) float64 {
	if b < 0 {
		return math.Inf(1)
	}
	return b
}

// KNearestBounded is a stand-in for the local bounded entry points.
func KNearestBounded(q string, k int, bound float64) int { return k }

// negLiteral smuggles the wire sentinel into a local call.
func negLiteral() {
	KNearestBounded("q", 5, -1) // want `negative bound -1 passed to KNearestBounded`
}

// negConst does the same through a named constant.
func negConst() {
	KNearestBounded("q", 5, noBound) // want `negative bound -1 passed to KNearestBounded`
}

// infBound is the sanctioned local spelling of "no bound".
func infBound() {
	KNearestBounded("q", 5, math.Inf(1))
}

// finiteBound is an ordinary pruning radius.
func finiteBound() {
	KNearestBounded("q", 5, 0.25)
}

// waivedNeg is a reviewed exception.
func waivedNeg() {
	KNearestBounded("q", 5, -1) //ced:boundconv-ok: exercising the reject-all path.
}

// encode builds a wire request the sanctioned way.
func encode(b float64) knnRequest {
	return knnRequest{Query: "q", K: 3, Bound: wireBound(b)}
}

// encodeRaw stores a local bound without encoding it.
func encodeRaw(b float64) knnRequest {
	return knnRequest{Query: "q", K: 3, Bound: b} // want `wire bound field knnRequest.Bound set without wireBound`
}

// assignRaw writes the field without encoding.
func assignRaw(req *knnRequest, b float64) {
	req.Bound = b // want `wire bound field req.Bound written without wireBound`
}

// assignEncoded writes the field the sanctioned way.
func assignEncoded(req *knnRequest, b float64) {
	req.Bound = wireBound(b)
}

// decode reads the field the sanctioned way.
func decode(req knnRequest) float64 {
	return fromWireBound(req.Bound)
}

// compareRaw compares the still-encoded value, which silently treats the
// "+Inf" sentinel as the tightest bound imaginable.
func compareRaw(req knnRequest, r float64) bool {
	return r <= req.Bound // want `wire bound field req.Bound used while still encoded`
}

// readWaived is a reviewed raw read (e.g. logging the wire value).
func readWaived(req knnRequest) float64 {
	return req.Bound //ced:boundconv-ok: logging the raw wire value.
}
