package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit under analysis: a package together with
// its in-package test files, or the external (_test-suffixed) test package
// of a directory.
type Package struct {
	// Path is the import path ("ced/internal/shard", or
	// "ced_test" style paths suffixed "_test" for external test packages).
	Path string
	// Dir is the package directory on disk.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// newInfo allocates the types.Info maps every pass relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// moduleImporter resolves imports while type-checking packages under
// analysis: module-internal paths are type-checked recursively from source
// (without test files), everything else — the standard library, since the
// module has no external dependencies — goes through the compiler's source
// importer. Import results are cached per importer.
type moduleImporter struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	module  string // module path, e.g. "ced"
	rootDir string // module root directory
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func newModuleImporter(fset *token.FileSet, module, rootDir string) *moduleImporter {
	return &moduleImporter{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		module:  module,
		rootDir: rootDir,
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path != mi.module && !strings.HasPrefix(path, mi.module+"/") {
		return mi.std.ImportFrom(path, dir, mode)
	}
	if p, ok := mi.pkgs[path]; ok {
		return p, nil
	}
	if mi.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	mi.loading[path] = true
	defer delete(mi.loading, path)

	pdir := filepath.Join(mi.rootDir, filepath.FromSlash(strings.TrimPrefix(path, mi.module)))
	files, err := parseGoDir(mi.fset, pdir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: mi}
	pkg, err := conf.Check(path, mi.fset, files, nil)
	if err != nil {
		return nil, err
	}
	mi.pkgs[path] = pkg
	return pkg, nil
}

// parseGoDir parses the .go files of one directory (sorted by name, with
// comments), optionally including _test.go files of the in-package test
// suite; external _test-package files are never returned.
func parseGoDir(fset *token.FileSet, dir string, tests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") {
			continue
		}
		if !tests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	var pkgName string
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !tests {
			// Exclude external test packages and keep a single package: the
			// non-test package name is the one without the _test suffix.
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
			if pkgName == "" {
				pkgName = f.Name.Name
			} else if f.Name.Name != pkgName {
				return nil, fmt.Errorf("%s: multiple packages %s and %s", dir, pkgName, f.Name.Name)
			}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return files, nil
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goModulePath returns the module path of the module rooted at (or above)
// dir.
func goModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Load enumerates the packages matching patterns (go list syntax, resolved
// in dir) and type-checks each from source: the package with its in-package
// test files as one unit, plus — when present — the external test package
// as a second unit. The standard library is imported from source, so Load
// needs no compiled export data, no network and no modules beyond the one
// under analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	module, err := goModulePath(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mi := newModuleImporter(fset, module, moduleRoot(dir, listed, module))

	var pkgs []*Package
	check := func(path, pdir string, fileNames []string) error {
		if len(fileNames) == 0 {
			return nil
		}
		var files []*ast.File
		for _, n := range fileNames {
			f, err := parser.ParseFile(fset, filepath.Join(pdir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: mi}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return fmt.Errorf("type-checking %s: %w", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: pdir, Fset: fset,
			Files: files, Types: tpkg, TypesInfo: info,
		})
		return nil
	}
	for _, lp := range listed {
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		names := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		sort.Strings(names)
		if err := check(lp.ImportPath, lp.Dir, names); err != nil {
			return nil, err
		}
		if len(lp.XTestGoFiles) > 0 {
			xnames := append([]string{}, lp.XTestGoFiles...)
			sort.Strings(xnames)
			if err := check(lp.ImportPath+"_test", lp.Dir, xnames); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}

// moduleRoot derives the module root directory: the listed package whose
// import path equals the module path, or dir walked up to go.mod.
func moduleRoot(dir string, listed []listedPackage, module string) string {
	for _, lp := range listed {
		if lp.ImportPath == module {
			return lp.Dir
		}
		if rel, ok := strings.CutPrefix(lp.ImportPath, module+"/"); ok {
			suffix := filepath.FromSlash(rel)
			if strings.HasSuffix(lp.Dir, suffix) {
				return strings.TrimSuffix(lp.Dir, suffix)
			}
		}
	}
	d, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
