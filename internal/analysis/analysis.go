// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo's
// analyzers (cmd/cedvet) mechanically enforce the engine's concurrency and
// metric invariants — pooled-workspace release discipline, per-worker
// session confinement, the wire-only negative-bound encoding, atomic
// snapshot publication, hardened HTTP servers and honest stage counters —
// so a refactor that breaks one fails review instead of shipping a flake.
//
// The x/tools module is deliberately not used: this build environment is
// offline and the module has no dependencies, so the suite runs everywhere
// the Go toolchain does. The API mirrors x/tools closely enough that the
// analyzers could be ported mechanically if the dependency ever lands.
//
// # Annotation vocabulary
//
// Analyzers understand a small set of machine-readable comments; each names
// the invariant it waives or declares, so a grep for "//ced:" inventories
// every reviewed exception in the tree:
//
//	//ced:poolleak-ok   (func doc)  the function hands the pooled value's
//	                                ownership to its caller; release happens
//	                                elsewhere by documented contract.
//	//ced:frozen        (type doc)  the struct is immutable once published
//	                                behind an atomic pointer; field writes
//	                                are only legal in //ced:publish funcs.
//	//ced:publish       (func doc)  the function constructs or republishes
//	                                frozen states pre-publication and may
//	                                write their fields.
//	//ced:boundconv-ok  (same line) a deliberately negative bound literal
//	                                (e.g. a defensive-path test).
//	//ced:stagecount-ok (same line) StageCounts intentionally discarded.
//	//ced:rawhttp-ok    (same line) a deliberately raw HTTP server.
//	//ced:sessionshare-ok (same line) a reviewed cross-goroutine session
//	                                  handoff.
//	//ced:ctxflow-ok    (same line) a reviewed break in the cancellation
//	                                chain (a deliberately detached root in
//	                                a handler, or a bounded timer loop).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is the one-paragraph description printed by cedvet -list: the
	// invariant enforced and the PR that introduced it.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	// lineMarks caches, per file, the //ced: markers found on each line.
	lineMarks map[*token.File]map[int][]string
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Marker is the comment prefix of the annotation vocabulary.
const Marker = "//ced:"

// HasMarker reports whether doc carries the given //ced: marker (for
// example HasMarker(fn.Doc, "poolleak-ok")). Explanatory text after the
// marker is encouraged and ignored.
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	want := Marker + marker
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") || strings.HasPrefix(text, want+":") {
			return true
		}
	}
	return false
}

// LineMarked reports whether any comment on pos's source line carries the
// given //ced: marker — the waiver form for single expressions, e.g.
// `got, _, _ := idx.KNearestBounded(q, k, b) //ced:stagecount-ok: ...`.
func (p *Pass) LineMarked(pos token.Pos, marker string) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.lineMarks == nil {
		p.lineMarks = make(map[*token.File]map[int][]string)
	}
	marks, ok := p.lineMarks[tf]
	if !ok {
		marks = make(map[int][]string)
		for _, f := range p.Files {
			if p.Fset.File(f.Pos()) != tf {
				continue
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(c.Text)
					if !strings.HasPrefix(text, Marker) {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					marks[line] = append(marks[line], strings.TrimPrefix(text, Marker))
				}
			}
		}
		p.lineMarks[tf] = marks
	}
	line := p.Fset.Position(pos).Line
	for _, m := range marks[line] {
		if m == marker || strings.HasPrefix(m, marker+" ") || strings.HasPrefix(m, marker+":") {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// NamedOf unwraps pointers and aliases down to the named type of t, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsPkgType reports whether t (possibly behind pointers/aliases) is the
// named type pkgPath.name. The package is matched by full path or by path
// suffix, so fixtures can stand in for the real packages (a fixture package
// "metric" matches the real "ced/internal/metric").
func IsPkgType(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// TypePkgPath returns the declaring package path of t's named type ("" when
// t has none).
func TypePkgPath(t types.Type) string {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// WalkStack traverses root in source order, calling fn with each node and
// the stack of its ancestors (outermost first, excluding n itself). If fn
// returns false the node's children are skipped.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped and Inspect delivers no closing nil for
			// n, so n must not be pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// CalleeName returns the bare identifier of a call's function: "f" for
// f(...), "m" for x.m(...), "" otherwise. Parens and type assertions around
// the callee are unwrapped.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
