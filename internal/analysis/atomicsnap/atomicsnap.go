// Package atomicsnap guards the PR-5 shard snapshot discipline: a shard's
// live state hangs off atomic.Pointer fields and is republished wholesale,
// never mutated in place. Two rules follow. First, any struct field whose
// type comes from sync/atomic may only be touched through its atomic
// method set (Load/Store/Swap/CompareAndSwap/Add) — copying or aliasing it
// defeats the race detector and the memory model alike. Second, a struct
// marked //ced:frozen is immutable once published: its fields may be
// assigned only inside functions marked //ced:publish, which by convention
// build a fresh value before the atomic.Pointer swing.
package atomicsnap

import (
	"go/ast"
	"go/types"

	"ced/internal/analysis"
)

// Analyzer is the atomicsnap pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsnap",
	Doc: "sync/atomic struct fields must be used only via Load/Store/Swap/" +
		"CompareAndSwap/Add, and fields of //ced:frozen structs may be written " +
		"only inside //ced:publish functions",
	Run: run,
}

// atomicMethods is the sanctioned method set on sync/atomic values.
var atomicMethods = map[string]bool{
	"Load":           true,
	"Store":          true,
	"Swap":           true,
	"CompareAndSwap": true,
	"Add":            true,
	"Or":             true,
	"And":            true,
}

func run(pass *analysis.Pass) error {
	frozen := frozenTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			publish := analysis.HasMarker(fn.Doc, "publish")
			analysis.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					checkAtomicField(pass, n, stack)
				case *ast.AssignStmt:
					if !publish {
						for _, lhs := range n.Lhs {
							checkFrozenWrite(pass, fn, lhs, frozen)
						}
					}
				case *ast.IncDecStmt:
					if !publish {
						checkFrozenWrite(pass, fn, n.X, frozen)
					}
				}
				return true
			})
		}
	}
	return nil
}

// frozenTypes collects type names declared with a //ced:frozen doc marker.
func frozenTypes(pass *analysis.Pass) map[types.Object]bool {
	frozen := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if analysis.HasMarker(ts.Doc, "frozen") || (len(gd.Specs) == 1 && analysis.HasMarker(gd.Doc, "frozen")) {
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
						frozen[obj] = true
					}
				}
			}
		}
	}
	return frozen
}

// checkAtomicField enforces rule one: a selector resolving to a struct
// field of a sync/atomic type must immediately receive one of the atomic
// methods.
func checkAtomicField(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := analysis.NamedOf(s.Type())
	if named == nil || !analysis.IsPkgType(named, "sync/atomic", named.Obj().Name()) {
		return
	}
	if pass.LineMarked(sel.Pos(), "atomicsnap-ok") {
		return
	}
	// The only sanctioned parent shape: (sel).Method(...) with Method in
	// the atomic set, itself called.
	if len(stack) >= 2 {
		if m, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && m.X == sel && atomicMethods[m.Sel.Name] {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == m {
				return
			}
		}
	}
	pass.Reportf(sel.Pos(),
		"atomic field %s used outside its atomic method set: access it only via "+
			"Load/Store/Swap/CompareAndSwap/Add so every reader sees a published snapshot",
		sel.Sel.Name)
}

// checkFrozenWrite enforces rule two: assignments (including index writes)
// through fields of a //ced:frozen struct are confined to //ced:publish
// functions.
func checkFrozenWrite(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr, frozen map[types.Object]bool) {
	if len(frozen) == 0 {
		return
	}
	// Peel index expressions: ns.tombs[id] = v writes through field tombs.
	e := ast.Unparen(lhs)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	named := analysis.NamedOf(s.Recv())
	if named == nil || !frozen[named.Obj()] {
		return
	}
	if pass.LineMarked(sel.Pos(), "atomicsnap-ok") {
		return
	}
	pass.Reportf(sel.Pos(),
		"field %s of frozen type %s written in %s, which is not marked //ced:publish: "+
			"published snapshots are immutable — build a fresh %s and swing the atomic pointer",
		sel.Sel.Name, named.Obj().Name(), fn.Name.Name, named.Obj().Name())
}
