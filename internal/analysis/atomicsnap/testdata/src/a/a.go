// Package a exercises the atomicsnap analyzer: atomic fields only through
// their method set, frozen structs only written by publish functions.
package a

import "sync/atomic"

// state is frozen once published behind shard.state.
//
//ced:frozen
type state struct {
	base  []string
	byID  map[uint64]int
	tombs map[uint64]bool
}

type shard struct {
	state atomic.Pointer[state]
	epoch atomic.Uint64
}

// snapshot reads through the sanctioned method.
func (s *shard) snapshot() *state {
	return s.state.Load()
}

// bump uses the numeric atomic correctly.
func (s *shard) bump() uint64 {
	return s.epoch.Add(1)
}

// alias copies the atomic by value through a raw field read.
func (s *shard) alias() any {
	return s.state // want `atomic field state used outside its atomic method set`
}

// raw compares the atomic field itself instead of its Load.
func (s *shard) raw(other *shard) bool {
	return &s.epoch == &other.epoch // want `atomic field epoch used outside its atomic method set` `atomic field epoch used outside its atomic method set`
}

// publishDelta rebuilds and swings the pointer; the doc marker licenses
// the field writes on the not-yet-published value.
//
//ced:publish
func (s *shard) publishDelta(doc string) {
	old := s.state.Load()
	ns := &state{byID: map[uint64]int{}, tombs: map[uint64]bool{}}
	ns.base = append(append([]string(nil), old.base...), doc)
	for id, i := range old.byID {
		ns.byID[id] = i
	}
	ns.tombs[7] = true
	s.state.Store(ns)
}

// mutateLive writes a published snapshot in place.
func (s *shard) mutateLive(doc string) {
	st := s.state.Load()
	st.base = append(st.base, doc) // want `field base of frozen type state written in mutateLive`
	st.tombs[3] = true             // want `field tombs of frozen type state written in mutateLive`
}

// waived is a reviewed in-place write.
func (s *shard) waived() {
	st := s.state.Load()
	st.byID[0] = 0 //ced:atomicsnap-ok: reviewed single-writer warm-up path.
}
