package atomicsnap_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/atomicsnap"
)

func TestAtomicSnap(t *testing.T) {
	analysistest.Run(t, "testdata", atomicsnap.Analyzer, "a")
}
