// Package a exercises the stagecount analyzer: rejection tallies must be
// merged, never silently dropped.
package a

// StageCounts mirrors ced/internal/core's per-stage rejection counters.
type StageCounts struct {
	Length, Anchor, Interval, Exact int
}

// Add merges o into c.
func (c *StageCounts) Add(o StageCounts) {
	c.Length += o.Length
	c.Anchor += o.Anchor
	c.Interval += o.Interval
	c.Exact += o.Exact
}

// Stats mirrors shard.Stats.
type Stats struct {
	Computations int
	Rejections   StageCounts
}

// KNearestBounded is a stand-in for the bounded search entry points.
func KNearestBounded(q string, k int, bound float64) ([]string, int, StageCounts) {
	return nil, 0, StageCounts{}
}

// blankDiscard throws the tally away.
func blankDiscard(q string) []string {
	got, _, _ := KNearestBounded(q, 5, 0.25) // want `StageCounts discarded with _`
	return got
}

// merged is the sanctioned idiom, mirroring shard.queryShard.
func merged(q string, stats *Stats) []string {
	got, n, rej := KNearestBounded(q, 5, 0.25)
	stats.Computations += n
	stats.Rejections.Add(rej)
	return got
}

// dropped throws every result away, tally included.
func dropped(q string) {
	KNearestBounded(q, 5, 0.25) // want `call result containing StageCounts dropped`
}

// singleBlank discards a lone StageCounts value.
func singleBlank(q string) {
	_, _, rej := KNearestBounded(q, 5, 0.25)
	_ = rej // want `StageCounts discarded with _`
}

// waived pins unrelated behaviour and documents the deliberate discard.
func waived(q string) []string {
	got, _, _ := KNearestBounded(q, 5, 0.25) //ced:stagecount-ok: test pins result order only.
	return got
}
