// Package a exercises the stagecount analyzer: rejection tallies must be
// merged, never silently dropped.
package a

// StageCounts mirrors ced/internal/core's per-stage rejection counters.
type StageCounts struct {
	Length, Anchor, Interval, Exact int
}

// Add merges o into c.
func (c *StageCounts) Add(o StageCounts) {
	c.Length += o.Length
	c.Anchor += o.Anchor
	c.Interval += o.Interval
	c.Exact += o.Exact
}

// Stats mirrors shard.Stats.
type Stats struct {
	Computations int
	Rejections   StageCounts
}

// KNearestBounded is a stand-in for the bounded search entry points.
func KNearestBounded(q string, k int, bound float64) ([]string, int, StageCounts) {
	return nil, 0, StageCounts{}
}

// blankDiscard throws the tally away.
func blankDiscard(q string) []string {
	got, _, _ := KNearestBounded(q, 5, 0.25) // want `StageCounts discarded with _`
	return got
}

// merged is the sanctioned idiom, mirroring shard.queryShard.
func merged(q string, stats *Stats) []string {
	got, n, rej := KNearestBounded(q, 5, 0.25)
	stats.Computations += n
	stats.Rejections.Add(rej)
	return got
}

// dropped throws every result away, tally included.
func dropped(q string) {
	KNearestBounded(q, 5, 0.25) // want `call result containing StageCounts dropped`
}

// singleBlank discards a lone StageCounts value.
func singleBlank(q string) {
	_, _, rej := KNearestBounded(q, 5, 0.25)
	_ = rej // want `StageCounts discarded with _`
}

// waived pins unrelated behaviour and documents the deliberate discard.
func waived(q string) []string {
	got, _, _ := KNearestBounded(q, 5, 0.25) //ced:stagecount-ok: test pins result order only.
	return got
}

// BatchResult mirrors core.BoundedResult: one candidate of a batch ladder
// call, carrying its own rejection tally.
type BatchResult struct {
	Distance   float64
	Rejections StageCounts
}

// KNearestBatch is a stand-in for the batch ladder entry points
// (core.ComputeBoundedBatch and friends).
func KNearestBatch(q string, cands []string) []BatchResult {
	return nil
}

// lossyBatchMerge keeps each candidate's distance but blanks its tally:
// the batch's rejections silently vanish from the shard totals.
func lossyBatchMerge(q string, cands []string) []float64 {
	out := make([]float64, len(cands))
	for i, r := range KNearestBatch(q, cands) {
		out[i] = r.Distance
		_ = r.Rejections // want `StageCounts discarded with _`
	}
	return out
}

// droppedBatch throws the whole batch away — per-candidate tallies
// included, which the carrier rule catches.
func droppedBatch(q string, cands []string) {
	KNearestBatch(q, cands) // want `call result containing StageCounts dropped`
}

// batchMerged is the sanctioned batch idiom: every candidate's tally is
// folded into the caller's stats, so the aggregate equals what the
// per-candidate ladder would have reported.
func batchMerged(q string, cands []string, stats *Stats) []float64 {
	out := make([]float64, len(cands))
	for i, r := range KNearestBatch(q, cands) {
		out[i] = r.Distance
		stats.Rejections.Add(r.Rejections)
	}
	return out
}

// batchWaived documents a deliberate batch discard (e.g. a benchmark
// warm-up call).
func batchWaived(q string, cands []string) {
	KNearestBatch(q, cands) //ced:stagecount-ok: warm-up call, values unused.
}
