// Package stagecount protects the observability contract of the staged
// rejection ladder (PR-4/PR-5): every bounded search returns a StageCounts
// tally saying which bound stage rejected each candidate, and callers are
// expected to merge those counters upward (shard.Stats.Add, queryShard's
// rej merging) so operators can see where pruning happens. Discarding a
// StageCounts — with a blank identifier or by dropping a call's results on
// the floor — silently zeroes a shard's contribution to the global tally,
// which is how dashboards end up lying. Deliberate discards (benchmarks,
// tests pinning unrelated behaviour) carry a //ced:stagecount-ok marker.
package stagecount

import (
	"go/ast"
	"go/types"

	"ced/internal/analysis"
)

// Analyzer is the stagecount pass.
var Analyzer = &analysis.Analyzer{
	Name: "stagecount",
	Doc: "StageCounts returned by bounded searches must be merged into the " +
		"caller's tally, not discarded with _ or an expression statement; " +
		"batch results carrying per-candidate StageCounts count too " +
		"(//ced:stagecount-ok waives a deliberate discard)",
	Run: run,
}

// isStageCounts reports whether t (possibly via the metric.StageCounts
// alias) is the StageCounts counter struct.
func isStageCounts(t types.Type) bool {
	named := analysis.NamedOf(t)
	return named != nil && named.Obj().Name() == "StageCounts"
}

// carriesStageCounts reports whether t is, or transitively contains, a
// StageCounts: the batch ladder entry points return slices of per-candidate
// results each holding its own tally, and dropping the whole call on the
// floor loses the counters just as surely as dropping a bare StageCounts.
// Only bare expression statements use the transitive rule — blank assigns
// keep the strict bare-StageCounts check, because `hits, _ :=` legitimately
// keeps the tally through the other results.
func carriesStageCounts(t types.Type) bool {
	return carries(t, make(map[types.Type]bool))
}

func carries(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isStageCounts(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return carries(u.Elem(), seen)
	case *types.Array:
		return carries(u.Elem(), seen)
	case *types.Pointer:
		return carries(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carries(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ExprStmt:
				checkExprStmt(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank-identifier positions whose incoming value is a
// StageCounts.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	report := func(pos ast.Node) {
		if pass.LineMarked(pos.Pos(), "stagecount-ok") {
			return
		}
		pass.Reportf(pos.Pos(),
			"StageCounts discarded with _: merge the rejection tally into the caller's "+
				"counters (StageCounts.Add / shard.Stats.Add) so stage accounting stays honest")
	}
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// Multi-value call: x, _, _ := f().
		tv, ok := pass.TypesInfo.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isStageCounts(tuple.At(i).Type()) {
				report(lhs)
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if isBlank(lhs) {
				if tv, ok := pass.TypesInfo.Types[as.Rhs[i]]; ok && isStageCounts(tv.Type) {
					report(lhs)
				}
			}
		}
	}
}

// checkExprStmt flags bare calls whose dropped results include a
// StageCounts.
func checkExprStmt(pass *analysis.Pass, st *ast.ExprStmt) {
	call, ok := ast.Unparen(st.X).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	drops := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if carriesStageCounts(t.At(i).Type()) {
				drops = true
			}
		}
	default:
		drops = carriesStageCounts(tv.Type)
	}
	if !drops || pass.LineMarked(call.Pos(), "stagecount-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"call result containing StageCounts dropped: merge the rejection tally into the "+
			"caller's counters (StageCounts.Add / shard.Stats.Add) so stage accounting stays honest")
}
