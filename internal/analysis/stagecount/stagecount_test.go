package stagecount_test

import (
	"testing"

	"ced/internal/analysis/analysistest"
	"ced/internal/analysis/stagecount"
)

func TestStageCount(t *testing.T) {
	analysistest.Run(t, "testdata", stagecount.Analyzer, "a")
}
