package remote

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzWireBound pins the negative-means-+Inf bound convention under
// arbitrary float inputs, the dynamic complement of cedvet's boundconv
// analyzer: encode/decode round-trips every legal local bound exactly
// (finite non-negative values bit-for-bit, +Inf through the negative
// sentinel), decode normalises every negative wire value to +Inf, and the
// encoded form survives the JSON hop inside a knnRequest.
func FuzzWireBound(f *testing.F) {
	f.Add(0.0)
	f.Add(0.25)
	f.Add(1.0)
	f.Add(math.Inf(1))
	f.Add(math.Inf(-1))
	f.Add(-1.0)
	f.Add(float64(noBound))
	f.Add(math.SmallestNonzeroFloat64)
	f.Add(math.MaxFloat64)
	f.Fuzz(func(t *testing.T, b float64) {
		if math.IsNaN(b) {
			t.Skip("NaN is not a bound: no caller can produce one and JSON cannot carry it")
		}

		w := wireBound(b)
		if math.IsInf(b, 1) {
			if w >= 0 {
				t.Fatalf("wireBound(+Inf) = %v, want a negative sentinel", w)
			}
		} else if b >= 0 && w != b {
			t.Fatalf("wireBound(%v) = %v, want the value unchanged", b, w)
		}

		got := fromWireBound(w)
		switch {
		case math.IsInf(b, 1) || b < 0:
			// +Inf encodes to the sentinel; a negative local value is
			// already wire-encoded, so decoding treats it as "no bound".
			if !math.IsInf(got, 1) {
				t.Fatalf("round trip of %v = %v, want +Inf", b, got)
			}
		default:
			if got != b {
				t.Fatalf("round trip of %v = %v, want exact", b, got)
			}
		}

		// The encoded bound must survive the JSON hop: JSON has no IEEE
		// infinities, which is the whole reason the sentinel exists. Legal
		// local bounds (finite ≥ 0 or +Inf) always encode finite; a
		// nonsense input like -Inf passes through and is only pinned above.
		if math.IsInf(w, 0) {
			return
		}
		req := knnRequest{Query: "q", K: 1, Bound: wireBound(b)}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("marshal with bound %v (wire %v): %v", b, w, err)
		}
		var back knnRequest
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		want := fromWireBound(req.Bound)
		if gotJSON := fromWireBound(back.Bound); gotJSON != want && !(math.IsInf(gotJSON, 1) && math.IsInf(want, 1)) {
			t.Fatalf("JSON hop changed the bound: sent %v, decoded %v", want, gotJSON)
		}
	})
}
