package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ced/internal/blob"
	"ced/internal/metric"
	"ced/internal/serve"
	"ced/internal/shard"
)

// maxBodyBytes bounds request bodies. Seed and dump payloads carry whole
// shard slices, so the ceiling is generous; a shard worth more than this
// should arrive via the snapshot pipeline, not one JSON body.
const maxBodyBytes = 64 << 20

// ServerConfig assembles a ShardServer: the distance, index kind and build
// tuning every hosted slot shares. The zero Metric is invalid; everything
// else follows the serve.Config conventions.
type ServerConfig struct {
	Metric           metric.Metric
	Algorithm        string // index kind for slot base indexes ("" = laesa)
	Pivots           int    // LAESA pivot count (<= 0 = 16)
	Seed             int64  // index-construction seed, offset per slot
	BuildWorkers     int    // index-construction fan-out (<= 0 = all CPUs)
	CompactThreshold int    // per-slot compaction trigger (<= 0 = default)
	// Store optionally attaches a durable blob store: each slot snapshots
	// into (and restores from) its own "slot-<idx>/" prefix. A fleet
	// sharing one store URL gives the coordinator a re-sync fast path —
	// donor publishes an incremental snapshot, the recovering replica
	// restores it — instead of a full dump transfer. Nil disables the
	// /shard/{slot}/snapshot and /shard/{slot}/restore endpoints.
	Store blob.Store
}

// ShardServer hosts logical shard slots for a cluster coordinator: each
// slot is an independent single-shard shard.Set created when the
// coordinator seeds it, queried with a request-scoped pruning bound and
// mutated with coordinator-minted IDs. One process can host any number of
// slots, so a small fleet can carry many logical shards (replica r of shard
// s lives on node (s+r) mod N — the coordinator's placement, invisible
// here).
type ShardServer struct {
	cfg    ServerConfig
	mu     sync.RWMutex
	slots  map[int]*shard.Set
	savers map[int]*shard.Saver // lazily built per slot; reset on re-seed

	// Cancellation outcome counters, surfaced on /healthz. A climbing
	// cancelled count is the direct evidence that coordinator hedging (and
	// client disconnects) actually stop shard-side computation instead of
	// letting abandoned scans run to completion.
	cancelled atomic.Uint64 // queries stopped by caller cancellation (499)
	deadline  atomic.Uint64 // queries stopped by an exhausted budget (504)
}

// NewShardServer builds an empty shard host; slots appear when seeded.
func NewShardServer(cfg ServerConfig) (*ShardServer, error) {
	if cfg.Metric == nil {
		return nil, fmt.Errorf("remote: nil metric")
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "laesa"
	}
	if cfg.Pivots <= 0 {
		cfg.Pivots = 16
	}
	// Resolve the builder once so a bad algorithm fails at startup, not at
	// the first seed.
	if _, err := shard.StandardBuild(cfg.Algorithm, cfg.Metric, cfg.Pivots, cfg.Seed, cfg.BuildWorkers); err != nil {
		return nil, fmt.Errorf("remote: %w", err)
	}
	return &ShardServer{
		cfg:    cfg,
		slots:  make(map[int]*shard.Set),
		savers: make(map[int]*shard.Saver),
	}, nil
}

// slotStore scopes the configured blob store to one slot's prefix (nil
// without a store).
func (s *ShardServer) slotStore(idx int) blob.Store {
	if s.cfg.Store == nil {
		return nil
	}
	// The prefix is a fixed-shape valid key, so Prefix cannot fail.
	st, err := blob.Prefix(s.cfg.Store, fmt.Sprintf("slot-%d", idx))
	if err != nil {
		panic(err)
	}
	return st
}

// saver returns (lazily creating) the slot's Saver; nil without a store.
func (s *ShardServer) saver(idx int) *shard.Saver {
	st := s.slotStore(idx)
	if st == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := s.savers[idx]
	if sv == nil {
		sv = shard.NewSaver(st)
		s.savers[idx] = sv
	}
	return sv
}

// slot returns the seeded set for a slot index, or nil.
func (s *ShardServer) slot(idx int) *shard.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.slots[idx]
}

// seed creates (or wholesale replaces — the re-sync path) slot idx.
func (s *ShardServer) seed(idx int, labelled bool, elems []shard.Element) error {
	// Offset the construction seed by the slot index so distinct slots draw
	// distinct but reproducible randomised choices, mirroring the
	// per-shard offset StandardBuild applies inside one set.
	build, err := shard.StandardBuild(s.cfg.Algorithm, s.cfg.Metric, s.cfg.Pivots,
		s.cfg.Seed+int64(idx), s.cfg.BuildWorkers)
	if err != nil {
		return err
	}
	set, err := shard.NewFromElements(elems, labelled, shard.Config{
		Shards:           1,
		Metric:           s.cfg.Metric,
		Build:            build,
		Algorithm:        s.cfg.Algorithm,
		CompactThreshold: s.cfg.CompactThreshold,
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.slots[idx] = set
	if sv := s.savers[idx]; sv != nil {
		// The wholesale-replaced corpus does not descend from whatever the
		// slot's saver last snapshotted; the next snapshot must not trust
		// its epoch baseline.
		sv.Reset()
	}
	s.mu.Unlock()
	return nil
}

// restore rebuilds slot idx from the newest snapshot under its store
// prefix and attaches the manifest to the slot's saver, so the next
// snapshot is incremental. It is the re-sync fast path: the content
// arrives from the blob store, not through the coordinator.
func (s *ShardServer) restore(ctx context.Context, idx int) (*shard.Set, *shard.Manifest, error) {
	st := s.slotStore(idx)
	if st == nil {
		return nil, nil, fmt.Errorf("no blob store configured on this node")
	}
	build, err := shard.StandardBuild(s.cfg.Algorithm, s.cfg.Metric, s.cfg.Pivots,
		s.cfg.Seed+int64(idx), s.cfg.BuildWorkers)
	if err != nil {
		return nil, nil, err
	}
	set, man, err := shard.LoadFromStore(ctx, st, shard.Config{
		Metric:           s.cfg.Metric,
		Build:            build,
		Algorithm:        s.cfg.Algorithm,
		CompactThreshold: s.cfg.CompactThreshold,
	})
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.slots[idx] = set
	sv := s.savers[idx]
	if sv == nil {
		sv = shard.NewSaver(st)
		s.savers[idx] = sv
	}
	s.mu.Unlock()
	sv.Attach(man)
	return set, man, nil
}

// Slots returns the currently seeded slot indexes and their live sizes.
func (s *ShardServer) Slots() map[int]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int]int, len(s.slots))
	for idx, set := range s.slots {
		out[idx] = set.Size()
	}
	return out
}

// errNotSeeded marks requests against a slot the coordinator has not
// seeded; it maps to 404 so clients treat it as non-retryable.
var errNotSeeded = errors.New("slot not seeded")

// Handler returns the shard-transport JSON API:
//
//	POST /shard/{slot}/seed     {metric, labelled, elements}   create/replace the slot
//	POST /shard/{slot}/knn      {query, k, bound}              bounded k-NN
//	POST /shard/{slot}/radius   {query, radius}                range query
//	POST /shard/{slot}/add      {id, value, label}             idempotent replicated write
//	POST /shard/{slot}/delete   {id}                           idempotent replicated delete
//	POST /shard/{slot}/compact  (no body)                      fold delta+tombstones
//	GET  /shard/{slot}/info                                    slot identity + size
//	GET  /shard/{slot}/dump                                    full live content (re-sync)
//	POST /shard/{slot}/snapshot (no body)                      publish the slot into the blob store
//	POST /shard/{slot}/restore  (no body)                      rebuild the slot from the blob store
//	GET  /healthz                                              node liveness + slot sizes
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Status    string      `json:"status"`
			Metric    string      `json:"metric"`
			Slots     map[int]int `json:"slots"`
			Cancelled uint64      `json:"cancelled"`
			Deadline  uint64      `json:"deadline_exceeded"`
		}{"ok", s.cfg.Metric.Name(), s.Slots(), s.cancelled.Load(), s.deadline.Load()})
	})
	mux.HandleFunc("POST /shard/{slot}/seed", s.withSlotIdx(func(w http.ResponseWriter, r *http.Request, idx int) {
		var req seedRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Metric != "" && req.Metric != s.cfg.Metric.Name() {
			writeRemoteError(w, http.StatusConflict,
				fmt.Errorf("metric mismatch: coordinator expects %q, this node serves %q", req.Metric, s.cfg.Metric.Name()))
			return
		}
		if err := s.seed(idx, req.Labelled, req.Elements); err != nil {
			writeRemoteError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, mutateResponse{Applied: true, Size: s.slot(idx).Size()})
	}))
	mux.HandleFunc("POST /shard/{slot}/knn", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		var req knnRequest
		if !decodeBody(w, r, &req) {
			return
		}
		ctx, cancel := serve.RequestContext(r)
		defer cancel()
		hits, st, err := set.KNearestBoundedCtx(ctx, []rune(req.Query), req.K, fromWireBound(req.Bound))
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		comps, rej := statsOf(st)
		writeJSON(w, http.StatusOK, queryResponse{Hits: hits, Computations: comps, Rejections: rej})
	}))
	mux.HandleFunc("POST /shard/{slot}/radius", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		var req radiusRequest
		if !decodeBody(w, r, &req) {
			return
		}
		ctx, cancel := serve.RequestContext(r)
		defer cancel()
		hits, st, err := set.RadiusCtx(ctx, []rune(req.Query), req.Radius)
		if err != nil {
			s.writeQueryError(w, err)
			return
		}
		comps, rej := statsOf(st)
		writeJSON(w, http.StatusOK, queryResponse{Hits: hits, Computations: comps, Rejections: rej})
	}))
	mux.HandleFunc("POST /shard/{slot}/add", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		var req addRequest
		if !decodeBody(w, r, &req) {
			return
		}
		applied := set.AddWithID(req.ID, req.Value, req.Label)
		writeJSON(w, http.StatusOK, mutateResponse{Applied: applied, Size: set.Size()})
	}))
	mux.HandleFunc("POST /shard/{slot}/delete", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		var req deleteRequest
		if !decodeBody(w, r, &req) {
			return
		}
		applied := set.Delete(req.ID)
		writeJSON(w, http.StatusOK, mutateResponse{Applied: applied, Size: set.Size()})
	}))
	mux.HandleFunc("POST /shard/{slot}/compact", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		set.Compact()
		writeJSON(w, http.StatusOK, mutateResponse{Applied: true, Size: set.Size()})
	}))
	mux.HandleFunc("GET /shard/{slot}/info", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		writeJSON(w, http.StatusOK, SlotInfo{
			Metric:    s.cfg.Metric.Name(),
			Algorithm: set.Algorithm(),
			Labelled:  set.Labelled(),
			Size:      set.Size(),
			NextID:    set.NextID(),
		})
	}))
	mux.HandleFunc("GET /shard/{slot}/dump", s.withSlot(func(w http.ResponseWriter, r *http.Request, set *shard.Set) {
		writeJSON(w, http.StatusOK, dumpResponse{Labelled: set.Labelled(), Elements: set.Elements()})
	}))
	mux.HandleFunc("POST /shard/{slot}/snapshot", s.withSlotIdx(func(w http.ResponseWriter, r *http.Request, idx int) {
		set := s.slot(idx)
		if set == nil {
			writeRemoteError(w, http.StatusNotFound, fmt.Errorf("slot %d: %w", idx, errNotSeeded))
			return
		}
		sv := s.saver(idx)
		if sv == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("no blob store configured on this node"))
			return
		}
		stats, err := sv.Save(r.Context(), set)
		if err != nil {
			writeRemoteError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, SlotSnapshot{
			Seq:         stats.Seq,
			ManifestSHA: stats.ManifestSHA,
			Size:        set.Size(),
			Uploaded:    stats.BasesUploaded + stats.OvlsUploaded,
			Skipped:     stats.BasesSkipped + stats.OvlsSkipped,
		})
	}))
	mux.HandleFunc("POST /shard/{slot}/restore", s.withSlotIdx(func(w http.ResponseWriter, r *http.Request, idx int) {
		set, man, err := s.restore(r.Context(), idx)
		if err != nil {
			// 404: non-retryable to the client; the coordinator falls back
			// to a dump-based reseed.
			writeRemoteError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, SlotSnapshot{
			Seq:         man.Seq,
			ManifestSHA: man.EnvelopeSHA(),
			Size:        set.Size(),
		})
	}))
	return mux
}

// withSlotIdx parses the {slot} path value.
func (s *ShardServer) withSlotIdx(fn func(http.ResponseWriter, *http.Request, int)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		idx, err := strconv.Atoi(r.PathValue("slot"))
		if err != nil || idx < 0 {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("bad slot index %q", r.PathValue("slot")))
			return
		}
		fn(w, r, idx)
	}
}

// withSlot resolves the {slot} path value to its seeded set.
func (s *ShardServer) withSlot(fn func(http.ResponseWriter, *http.Request, *shard.Set)) http.HandlerFunc {
	return s.withSlotIdx(func(w http.ResponseWriter, r *http.Request, idx int) {
		set := s.slot(idx)
		if set == nil {
			writeRemoteError(w, http.StatusNotFound, fmt.Errorf("slot %d: %w", idx, errNotSeeded))
			return
		}
		fn(w, r, set)
	})
}

// decodeBody parses a JSON request body, rejecting oversized payloads. On
// failure it writes the error response and returns false.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeRemoteError(w, status, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeQueryError maps a failed slot query to a status and bumps the
// node's cancellation counters: a vanished caller (the coordinator gave
// up, often because a hedged sibling won) is 499, an exhausted budget is
// 504, anything else is a plain bad request.
func (s *ShardServer) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		s.cancelled.Add(1)
		writeRemoteError(w, serve.StatusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.deadline.Add(1)
		writeRemoteError(w, http.StatusGatewayTimeout, err)
	default:
		writeRemoteError(w, http.StatusBadRequest, err)
	}
}

func writeRemoteError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
