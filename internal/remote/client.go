package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ced/internal/serve"
	"ced/internal/shard"
)

// Client default tuning. The per-attempt timeout covers one HTTP round
// trip; the retry budget covers transient transport faults (connection
// refused/reset, truncated responses, 5xx) with exponential backoff.
const (
	DefaultTimeout = 2 * time.Second
	DefaultRetries = 2
	DefaultBackoff = 10 * time.Millisecond
	maxBackoff     = 250 * time.Millisecond
)

// ClientConfig tunes one shard client. The zero value gets the defaults
// above and a fresh http.Client; a coordinator shares one http.Client (and
// its connection pool) across all its replicas.
type ClientConfig struct {
	// Timeout bounds each attempt; <= 0 uses DefaultTimeout.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first; < 0
	// means none, 0 uses DefaultRetries.
	Retries int
	// Backoff is the first retry delay, doubling per attempt up to a cap;
	// <= 0 uses DefaultBackoff.
	Backoff time.Duration
	// HTTPClient optionally shares a transport; nil allocates one.
	HTTPClient *http.Client
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	switch {
	case c.Retries < 0:
		c.Retries = 0
	case c.Retries == 0:
		c.Retries = DefaultRetries
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Client speaks the shard transport to one slot of one shard server. Every
// call takes a context (the coordinator cancels hedged losers through it),
// applies the per-attempt timeout, and retries transient failures with
// exponential backoff. All operations are idempotent at the server —
// queries trivially, writes via coordinator-minted IDs — so retrying after
// an ambiguous failure (request applied, response lost) is safe.
type Client struct {
	base string // server base URL, no trailing slash
	slot int
	cfg  ClientConfig
}

// NewClient builds a client for slot idx of the shard server at baseURL.
func NewClient(baseURL string, slot int, cfg ClientConfig) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{base: baseURL, slot: slot, cfg: cfg.withDefaults()}
}

// Base returns the server base URL (health reporting).
func (c *Client) Base() string { return c.base }

// Slot returns the slot index this client addresses.
func (c *Client) Slot() int { return c.slot }

// apiError is a non-retryable 4xx response from the shard server.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("shard server: %s (HTTP %d)", e.msg, e.status)
}

// do runs one transport call with retry: POST body (or GET when body is
// nil) to /shard/{slot}/{op}, decoding the JSON response into out. 4xx
// responses fail immediately; transport errors, truncated bodies and 5xx
// retry up to the budget.
func (c *Client) do(ctx context.Context, method, op string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("remote: encoding %s request: %w", op, err)
		}
	}
	url := fmt.Sprintf("%s/shard/%d/%s", c.base, c.slot, op)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			delay := min(c.cfg.Backoff<<(attempt-1), maxBackoff)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		err := c.attempt(ctx, method, url, payload, out)
		if err == nil {
			return nil
		}
		var api *apiError
		if errors.As(err, &api) {
			return err // the server answered; retrying cannot change its mind
		}
		if ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("remote: %s %s after %d attempts: %w", op, c.base, c.cfg.Retries+1, lastErr)
}

// attempt runs a single bounded HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, url string, payload []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's remaining deadline budget so the server clamps
	// its own work to it: without the header a shard keeps computing for a
	// coordinator that has already timed out. Stamped per attempt — a retry
	// carries the (smaller) budget that is actually left, and the per-attempt
	// timeout participates because actx already folds it in.
	if dl, ok := actx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1 // already exhausted: tell the server to fail fast
		}
		req.Header.Set(serve.BudgetHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err // connection died mid-stream: retryable
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorMessage(raw))
	}
	if resp.StatusCode >= 400 {
		return &apiError{status: resp.StatusCode, msg: errorMessage(raw)}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("truncated or malformed response: %w", err)
		}
	}
	return nil
}

// errorMessage extracts the server's error string from a response body.
func errorMessage(raw []byte) string {
	var er errorResponse
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return er.Error
	}
	if len(raw) > 200 {
		raw = raw[:200]
	}
	return string(raw)
}

// Seed creates or wholesale replaces the slot with the given elements.
func (c *Client) Seed(ctx context.Context, metricName string, labelled bool, elems []shard.Element) error {
	return c.do(ctx, http.MethodPost, "seed",
		seedRequest{Metric: metricName, Labelled: labelled, Elements: elems}, nil)
}

// KNearestBounded answers a bounded k-NN query against the slot,
// propagating the coordinator's running pruning radius (math.Inf(1) for
// none) across the wire.
func (c *Client) KNearestBounded(ctx context.Context, q string, k int, bound float64) ([]shard.Hit, shard.Stats, error) {
	var resp queryResponse
	err := c.do(ctx, http.MethodPost, "knn", knnRequest{Query: q, K: k, Bound: wireBound(bound)}, &resp)
	if err != nil {
		return nil, shard.Stats{}, err
	}
	return resp.Hits, toStats(resp.Computations, resp.Rejections), nil
}

// Radius answers a range query against the slot.
func (c *Client) Radius(ctx context.Context, q string, r float64) ([]shard.Hit, shard.Stats, error) {
	var resp queryResponse
	err := c.do(ctx, http.MethodPost, "radius", radiusRequest{Query: q, Radius: r}, &resp)
	if err != nil {
		return nil, shard.Stats{}, err
	}
	return resp.Hits, toStats(resp.Computations, resp.Rejections), nil
}

// Add applies a coordinator-minted write; applied is false for an
// idempotent re-delivery.
func (c *Client) Add(ctx context.Context, e shard.Element) (applied bool, size int, err error) {
	var resp mutateResponse
	err = c.do(ctx, http.MethodPost, "add", addRequest{ID: e.ID, Value: e.Value, Label: e.Label}, &resp)
	return resp.Applied, resp.Size, err
}

// Delete removes an element by ID; applied is false when it was not live.
func (c *Client) Delete(ctx context.Context, id uint64) (applied bool, size int, err error) {
	var resp mutateResponse
	err = c.do(ctx, http.MethodPost, "delete", deleteRequest{ID: id}, &resp)
	return resp.Applied, resp.Size, err
}

// Compact folds the slot's mutation overlay into its base index.
func (c *Client) Compact(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "compact", struct{}{}, nil)
}

// Info fetches the slot's identity and live size (also the health probe).
func (c *Client) Info(ctx context.Context) (SlotInfo, error) {
	var resp SlotInfo
	err := c.do(ctx, http.MethodGet, "info", nil, &resp)
	return resp, err
}

// Dump fetches the slot's full live content (replica re-sync source).
func (c *Client) Dump(ctx context.Context) (labelled bool, elems []shard.Element, err error) {
	var resp dumpResponse
	err = c.do(ctx, http.MethodGet, "dump", nil, &resp)
	return resp.Labelled, resp.Elements, err
}

// Snapshot asks the host to publish the slot into its blob store
// (incremental — unchanged shards cost nothing). 400 when the host has no
// store configured.
func (c *Client) Snapshot(ctx context.Context) (SlotSnapshot, error) {
	var resp SlotSnapshot
	err := c.do(ctx, http.MethodPost, "snapshot", struct{}{}, &resp)
	return resp, err
}

// Restore asks the host to rebuild the slot from its blob store — the
// re-sync fast path. 404 when no store is configured or it holds no
// loadable snapshot for the slot.
func (c *Client) Restore(ctx context.Context) (SlotSnapshot, error) {
	var resp SlotSnapshot
	err := c.do(ctx, http.MethodPost, "restore", struct{}{}, &resp)
	return resp, err
}
