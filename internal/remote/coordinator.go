package remote

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ced/internal/serve"
	"ced/internal/shard"
)

// Coordinator defaults.
const (
	DefaultFailThreshold   = 3
	DefaultProbeInterval   = 500 * time.Millisecond
	DefaultHedgePercentile = 0.95
	DefaultHedgeMin        = 1 * time.Millisecond
	DefaultHedgeMax        = 100 * time.Millisecond
	// DefaultBreakerCooldown is how long an ejected (but clean) replica's
	// breaker stays open — failing fast, receiving no traffic — before it
	// goes half-open and trial queries may probe it again.
	DefaultBreakerCooldown = 250 * time.Millisecond
)

// Config assembles a Coordinator.
type Config struct {
	// Nodes lists the shard-server base URLs (e.g. "http://10.0.0.7:9001").
	Nodes []string
	// Shards is the logical shard count S; <= 0 uses one per node.
	Shards int
	// Replicas is the replication factor R (replica r of shard s lives on
	// node (s+r) mod len(Nodes)); <= 0 means 1, clamped to the node count.
	Replicas int
	// RangeWidth is the ID-range placement block: element ID id belongs to
	// logical shard (id / RangeWidth) mod S, so each shard owns cyclic
	// contiguous ID ranges. <= 0 defers to Seed, which picks
	// ceil(corpus/S) so the initial corpus splits into S contiguous runs.
	RangeWidth int
	// MetricName is the distance the cluster serves; seeding asserts every
	// node agrees, because a mixed-metric cluster would silently lose the
	// exactness guarantee.
	MetricName string

	// Timeout, Retries and Backoff tune every per-replica client (see
	// ClientConfig).
	Timeout time.Duration
	Retries int
	Backoff time.Duration

	// HedgeAfter is a fixed hedge delay: a query that outlives it races a
	// second replica. 0 selects the adaptive policy — the
	// HedgePercentile-th recent per-shard latency, clamped to
	// [HedgeMin, HedgeMax]. Negative disables hedging (failover only).
	HedgeAfter      time.Duration
	HedgePercentile float64       // 0 = DefaultHedgePercentile
	HedgeMin        time.Duration // 0 = DefaultHedgeMin
	HedgeMax        time.Duration // 0 = DefaultHedgeMax

	// FailThreshold ejects a replica after this many consecutive failed
	// calls; <= 0 uses DefaultFailThreshold.
	FailThreshold int
	// ProbeInterval paces the background readmission loop; 0 uses
	// DefaultProbeInterval, negative disables it (tests drive Probe
	// directly).
	ProbeInterval time.Duration
	// BreakerCooldown is the per-replica circuit-breaker open window: an
	// ejected clean replica receives no traffic at all until it elapses,
	// then goes half-open and may serve trial queries (a success closes the
	// breaker, a failure re-arms the window). 0 uses
	// DefaultBreakerCooldown; negative disables the open window, making
	// every ejected-clean replica an immediate last resort.
	BreakerCooldown time.Duration

	// AllowDegraded opts the coordinator into partial answers: when every
	// replica of some logical shard is unusable, a fanned query returns the
	// hits of the shards that did answer together with a *Degraded error
	// naming the missing shards, instead of failing outright. Off by
	// default — a silent partial answer would void the exactness guarantee,
	// so callers must both opt in here and handle the tagged error.
	AllowDegraded bool

	// MaxInFlight bounds concurrently admitted client-facing queries on the
	// coordinator HTTP handler (see serve.Config.MaxInFlight); <= 0
	// disables admission control. MaxQueueWait and RetryAfter follow the
	// serve.Gate conventions.
	MaxInFlight  int
	MaxQueueWait time.Duration
	RetryAfter   int

	// HTTPClient optionally shares one transport across all replicas.
	HTTPClient *http.Client
}

// Degraded is the error a degraded-mode fan-out attaches to a partial
// answer: the listed logical shards contributed nothing (every replica
// unusable), every other shard's hits are present and exact. It is only
// ever returned when Config.AllowDegraded is set; transports surface it as
// a tagged 200, never as a silent success.
type Degraded struct {
	MissingShards []int
}

func (e *Degraded) Error() string {
	return fmt.Sprintf("remote: degraded answer: shards %v unavailable", e.MissingShards)
}

// Coordinator serves the cluster: it owns the placement (ID ranges over
// logical shards, shards over nodes), mints element IDs, replicates every
// write R ways, fans queries over the logical shards with the cross-shard
// pruning bound, hedges slow replicas, and tracks per-replica health. All
// methods are safe for concurrent use after Seed.
type Coordinator struct {
	cfg      Config
	replicas [][]*replica // [shard][r]
	// writeMu serialises replicated writes per shard — and the re-sync a
	// readmission needs — so a recovering replica can never miss a write
	// that lands between its dump and its reseed.
	writeMu []sync.Mutex

	labelled   bool
	rangeWidth int
	nextID     atomic.Uint64

	// rr rotates each shard's primary replica independently. One global
	// counter would be bumped exactly S times per fanned query, so with S
	// even every shard would see a fixed parity and the "rotation" would
	// pin each shard to one replica forever.
	rr      []atomic.Uint64
	hedged  atomic.Uint64
	retried atomic.Uint64
	// gate is the client-facing admission controller (nil when disabled);
	// degraded/cancelled/deadline count query outcomes for /healthz.
	gate      *serve.Gate
	degraded  atomic.Uint64
	cancelled atomic.Uint64
	deadline  atomic.Uint64
	// resyncRestores/resyncSeeds count how replica re-syncs were served:
	// store-mediated restore (fast path) vs full dump transfer (fallback).
	resyncRestores atomic.Uint64
	resyncSeeds    atomic.Uint64
	lat            latencyRing

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// NewCoordinator wires the placement and starts the readmission loop. The
// cluster is unusable until Seed (or a node-side pre-seeded topology with
// matching placement) provides corpus content.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("remote: coordinator needs at least one node")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = len(cfg.Nodes)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Nodes) {
		return nil, fmt.Errorf("remote: %d replicas need at least that many nodes (have %d)",
			cfg.Replicas, len(cfg.Nodes))
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.HedgePercentile <= 0 || cfg.HedgePercentile >= 1 {
		cfg.HedgePercentile = DefaultHedgePercentile
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = DefaultHedgeMin
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = DefaultHedgeMax
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	ccfg := ClientConfig{
		Timeout:    cfg.Timeout,
		Retries:    cfg.Retries,
		Backoff:    cfg.Backoff,
		HTTPClient: cfg.HTTPClient,
	}
	c := &Coordinator{
		cfg:        cfg,
		replicas:   make([][]*replica, cfg.Shards),
		writeMu:    make([]sync.Mutex, cfg.Shards),
		rr:         make([]atomic.Uint64, cfg.Shards),
		rangeWidth: cfg.RangeWidth,
		gate:       serve.NewGate(cfg.MaxInFlight, cfg.MaxQueueWait, cfg.RetryAfter),
		stopProbe:  make(chan struct{}),
	}
	for s := 0; s < cfg.Shards; s++ {
		c.replicas[s] = make([]*replica, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			node := (s + r) % len(cfg.Nodes)
			c.replicas[s][r] = &replica{
				node:   node,
				shard:  s,
				client: NewClient(cfg.Nodes[node], s, ccfg),
			}
		}
	}
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the background readmission loop.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stopProbe) })
	c.probeWG.Wait()
}

// Shards and Replicas report the placement dimensions.
func (c *Coordinator) Shards() int   { return len(c.replicas) }
func (c *Coordinator) Replicas() int { return c.cfg.Replicas }

// RangeWidth reports the ID-range placement block (0 before Seed when the
// config deferred it).
func (c *Coordinator) RangeWidth() int { return c.rangeWidth }

// Labelled reports whether the seeded corpus carries class labels.
func (c *Coordinator) Labelled() bool { return c.labelled }

// NextID returns the ID the next Add will mint.
func (c *Coordinator) NextID() uint64 { return c.nextID.Load() }

// owner maps a global element ID to its logical shard.
func (c *Coordinator) owner(id uint64) int {
	return int((id / uint64(c.rangeWidth)) % uint64(len(c.replicas)))
}

// Seed pushes the initial corpus to every replica of every shard: element i
// gets global ID i, IDs split into cyclic contiguous ranges of rangeWidth,
// and each shard's slice lands on all R of its replicas. Seeding is strict
// — every replica must accept its slice — because a cluster that boots
// partially replicated would degrade its fault story silently. Call before
// serving; Seed is not concurrency-safe against queries or writes.
func (c *Coordinator) Seed(ctx context.Context, corpus []string, labels []int) error {
	if len(labels) != 0 && len(labels) != len(corpus) {
		return fmt.Errorf("remote: %d corpus strings but %d labels", len(corpus), len(labels))
	}
	c.labelled = len(labels) != 0
	if c.rangeWidth <= 0 {
		c.rangeWidth = (len(corpus) + len(c.replicas) - 1) / len(c.replicas)
		if c.rangeWidth <= 0 {
			c.rangeWidth = 1024
		}
	}
	slices := make([][]shard.Element, len(c.replicas))
	for i, v := range corpus {
		e := shard.Element{ID: uint64(i), Value: v}
		if c.labelled {
			e.Label = labels[i]
		}
		s := c.owner(e.ID)
		slices[s] = append(slices[s], e)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.replicas))
	for s := range c.replicas {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for _, rep := range c.replicas[s] {
				if err := rep.client.Seed(ctx, c.cfg.MetricName, c.labelled, slices[s]); err != nil {
					errs[s] = fmt.Errorf("seeding shard %d on %s: %w", s, rep.client.Base(), err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.nextID.Store(uint64(len(corpus)))
	return nil
}

// queryOrder returns shard s's replicas in routing order: healthy
// (breaker-closed) replicas first, rotated round-robin for load spreading,
// then half-open ones — ejected clean replicas whose breaker cooldown has
// elapsed — as trial-eligible fallbacks. Replicas with an open breaker are
// skipped outright (fail fast: a node that just failed repeatedly gets a
// quiet window, not more traffic), and stale replicas never appear — they
// may have missed writes, and one approximate answer would void the
// cluster's guarantee.
func (c *Coordinator) queryOrder(s int) []*replica {
	reps := c.replicas[s]
	start := int(c.rr[s].Add(1)) % len(reps)
	var healthy, fallback []*replica
	for i := range reps {
		rep := reps[(start+i)%len(reps)]
		switch {
		case rep.healthy():
			healthy = append(healthy, rep)
		case rep.usable(c.cfg.BreakerCooldown):
			fallback = append(fallback, rep)
		}
	}
	return append(healthy, fallback...)
}

// hedgeDelay resolves the current hedge trigger.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter != 0 {
		return c.cfg.HedgeAfter
	}
	d := c.lat.percentile(c.cfg.HedgePercentile)
	if d == 0 {
		return c.cfg.HedgeMax
	}
	return min(max(d, c.cfg.HedgeMin), c.cfg.HedgeMax)
}

// badRequestError marks a caller mistake (bad k, unlabelled classify) as
// opposed to a cluster fault; the HTTP layer maps it to 400 vs 502.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, a ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, a...)}
}

// shardAnswer is one replica's reply to a fanned shard query.
type shardAnswer struct {
	hits  []shard.Hit
	stats shard.Stats
	err   error
}

// queryShard answers one logical shard's part of a query, racing replicas:
// the primary goes first; a hedge replica launches when the primary
// outlives the hedge delay, and a failover replica launches immediately on
// error. Every attempt runs under its own cancellable child context, all of
// which are cancelled the moment a winner returns (or the caller gives up)
// — so a losing replica stops computing immediately instead of finishing
// an answer nobody will read; with the budget header the cancellation
// reaches all the way into the shard-side scan loop. The first success
// wins (all answers are exact — replicas are interchangeable) and health
// is recorded per replica.
func (c *Coordinator) queryShard(ctx context.Context, s int, call func(context.Context, *Client) ([]shard.Hit, shard.Stats, error)) ([]shard.Hit, shard.Stats, error) {
	order := c.queryOrder(s)
	if len(order) == 0 {
		return nil, shard.Stats{}, fmt.Errorf("remote: shard %d has no usable replica", s)
	}
	// cancels is touched only by this goroutine (launches happen in the
	// select loop below); the deferred sweep reaps every still-running
	// attempt on all return paths, including the winner's.
	cancels := make([]context.CancelFunc, 0, len(order))
	defer func() {
		for _, cn := range cancels {
			cn()
		}
	}()
	resCh := make(chan shardAnswer, len(order))
	launch := func(rep *replica) {
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		go func() {
			t0 := time.Now()
			hits, st, err := call(actx, rep.client)
			if err == nil {
				c.lat.record(time.Since(t0))
				rep.recordSuccess()
			} else if actx.Err() == nil {
				// A loser cancelled after the winner returned is not a
				// health signal; a real failure is.
				rep.recordFailure(err, c.cfg.FailThreshold)
			}
			resCh <- shardAnswer{hits, st, err}
		}()
	}
	launch(order[0])
	next, pending := 1, 1
	var hedgeTimer <-chan time.Time
	if next < len(order) && c.cfg.HedgeAfter >= 0 {
		hedgeTimer = time.After(c.hedgeDelay())
	}
	var lastErr error
	for pending > 0 {
		select {
		case a := <-resCh:
			pending--
			if a.err == nil {
				return a.hits, a.stats, nil
			}
			lastErr = a.err
			if next < len(order) {
				c.retried.Add(1)
				launch(order[next])
				next++
				pending++
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(order) {
				c.hedged.Add(1)
				launch(order[next])
				next++
				pending++
			}
		case <-ctx.Done():
			return nil, shard.Stats{}, ctx.Err()
		}
	}
	return nil, shard.Stats{}, fmt.Errorf("remote: shard %d: every replica failed: %w", s, lastErr)
}

// fanQuery runs call against every logical shard concurrently, summing the
// winning replicas' stats. By default any shard failure fails the query: a
// partial answer would be silently approximate, which this cluster never
// is. With Config.AllowDegraded, shard-unavailability failures instead
// drop that shard from the answer and the call returns the surviving
// shards' results with a *Degraded error naming the missing ones — but
// only if at least one shard answered, and never for caller mistakes or
// the caller's own cancellation, which stay loud.
func (c *Coordinator) fanQuery(ctx context.Context, call func(ctx context.Context, s int) ([]shard.Hit, shard.Stats, error)) ([][]shard.Hit, shard.Stats, error) {
	all := make([][]shard.Hit, len(c.replicas))
	stats := make([]shard.Stats, len(c.replicas))
	errs := make([]error, len(c.replicas))
	var wg sync.WaitGroup
	for s := range c.replicas {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			all[s], stats[s], errs[s] = call(ctx, s)
		}(s)
	}
	wg.Wait()
	var total shard.Stats
	var missing []int
	for s := range errs {
		if errs[s] != nil {
			if !c.cfg.AllowDegraded || !degradable(errs[s]) {
				return nil, shard.Stats{}, errs[s]
			}
			all[s] = nil
			missing = append(missing, s)
			continue
		}
		total.Add(stats[s])
	}
	if len(missing) == len(c.replicas) {
		// Every shard is gone: there is no partial answer to degrade to.
		return nil, shard.Stats{}, errs[missing[0]]
	}
	if len(missing) > 0 {
		c.degraded.Add(1)
		return all, total, &Degraded{MissingShards: missing}
	}
	return all, total, nil
}

// degradable reports whether a shard failure may be absorbed into a
// degraded answer: cluster faults qualify; the caller's own cancellation
// or mistake never does (degrading those would mask the real outcome).
func degradable(err error) bool {
	var bad *badRequestError
	if errors.As(err, &bad) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// KNearest returns the k nearest live cluster elements to q, closest first
// (ties by ID) — the monolithic engine's answer, assembled remotely. Every
// shard request carries the merger's running k-th-best distance at launch
// time, so late shards (and hedged retries) prune against the
// tightest-known cross-cluster bound, exactly like the in-process fan-out.
func (c *Coordinator) KNearest(ctx context.Context, q string, k int) ([]shard.Hit, shard.Stats, error) {
	if k <= 0 {
		return nil, shard.Stats{}, badRequestf("remote: k must be positive (got %d)", k)
	}
	mg := shard.NewMerger(k)
	var mu sync.Mutex // serialises Offer against final Hits read — cheap, S offers total
	_, stats, err := c.fanQuery(ctx, func(ctx context.Context, s int) ([]shard.Hit, shard.Stats, error) {
		hits, st, err := c.queryShard(ctx, s, func(ctx context.Context, cl *Client) ([]shard.Hit, shard.Stats, error) {
			return cl.KNearestBounded(ctx, q, k, mg.Bound())
		})
		if err != nil {
			return nil, shard.Stats{}, err
		}
		mu.Lock()
		mg.Offer(hits)
		mu.Unlock()
		return nil, st, nil
	})
	var deg *Degraded
	if err != nil && !errors.As(err, &deg) {
		return nil, shard.Stats{}, err
	}
	// err is nil or the *Degraded tag for the surviving shards' merged
	// answer; the caller opted into (and must surface) the latter.
	return mg.Hits(), stats, err
}

// Radius returns every live cluster element within distance r of q
// (inclusive), sorted by (distance, ID). r itself prunes every shard, so
// no running bound is needed and the merged answer is deterministic.
func (c *Coordinator) Radius(ctx context.Context, q string, r float64) ([]shard.Hit, shard.Stats, error) {
	all, stats, err := c.fanQuery(ctx, func(ctx context.Context, s int) ([]shard.Hit, shard.Stats, error) {
		return c.queryShard(ctx, s, func(ctx context.Context, cl *Client) ([]shard.Hit, shard.Stats, error) {
			return cl.Radius(ctx, q, r)
		})
	})
	var deg *Degraded
	if err != nil && !errors.As(err, &deg) {
		return nil, shard.Stats{}, err
	}
	var merged []shard.Hit
	for _, hits := range all {
		merged = append(merged, hits...)
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Distance != merged[b].Distance {
			return merged[a].Distance < merged[b].Distance
		}
		return merged[a].ID < merged[b].ID
	})
	return merged, stats, err // nil, or the *Degraded tag on a partial answer
}

// Classify labels q with the class of its nearest live element (ties by
// ID, like every searcher in this repository).
func (c *Coordinator) Classify(ctx context.Context, q string) (shard.Hit, shard.Stats, error) {
	if !c.labelled {
		return shard.Hit{}, shard.Stats{}, badRequestf("remote: cluster corpus is unlabelled")
	}
	hits, st, err := c.KNearest(ctx, q, 1)
	var deg *Degraded
	if err != nil && !errors.As(err, &deg) {
		return shard.Hit{}, shard.Stats{}, err
	}
	if len(hits) == 0 {
		if deg != nil {
			// Nothing to classify with: the degraded tag cannot soften a
			// missing answer, only a partial one.
			return shard.Hit{}, st, fmt.Errorf("remote: no usable shard answered: %w", err)
		}
		return shard.Hit{}, st, badRequestf("remote: empty cluster corpus")
	}
	return hits[0], st, err // nil, or the *Degraded tag on a partial answer
}

// writeReplicas applies op to every replica of shard s under the shard
// write lock. Ejected replicas are skipped and marked stale (they are
// missing this write until a re-sync); replicas whose op fails after the
// client's retries are ejected and marked stale. The write succeeds if at
// least one replica applied it.
func (c *Coordinator) writeReplicas(s int, op func(*replica) error) error {
	c.writeMu[s].Lock()
	defer c.writeMu[s].Unlock()
	reps := c.replicas[s]
	var live []*replica
	for _, rep := range reps {
		if rep.healthy() {
			live = append(live, rep)
		} else {
			rep.markStale()
		}
	}
	var wg sync.WaitGroup
	results := make([]error, len(live))
	for i, rep := range live {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			results[i] = op(rep)
		}(i, rep)
	}
	wg.Wait()
	ok := 0
	var lastErr error
	for i, rep := range live {
		if results[i] == nil {
			rep.recordSuccess()
			ok++
		} else {
			lastErr = results[i]
			rep.recordFailure(results[i], 1) // a failed write ejects immediately
			rep.markStale()
		}
	}
	if ok == 0 {
		return fmt.Errorf("remote: shard %d: write applied on no replica: %w", s, lastErr)
	}
	return nil
}

// Add inserts value into the live cluster corpus and returns its stable
// coordinator-minted ID. The write lands on every live replica of the
// owning shard before Add acknowledges; replicas that miss it are ejected
// as stale and re-synced before readmission, so acknowledged writes are
// never lost and queries never observe a replica that missed one.
func (c *Coordinator) Add(ctx context.Context, value string, label int) (uint64, error) {
	id := c.nextID.Add(1) - 1
	s := c.owner(id)
	err := c.writeReplicas(s, func(rep *replica) error {
		_, _, err := rep.client.Add(ctx, shard.Element{ID: id, Value: value, Label: label})
		return err
	})
	if err != nil {
		return 0, err
	}
	return id, nil
}

// Delete removes the element with the given ID, reporting whether any
// replica observed it live. Deleted IDs never resurface: the slot sets
// tombstone them and refuse re-insertion.
func (c *Coordinator) Delete(ctx context.Context, id uint64) (bool, error) {
	if id >= c.nextID.Load() {
		return false, nil
	}
	s := c.owner(id)
	var mu sync.Mutex
	deleted := false
	err := c.writeReplicas(s, func(rep *replica) error {
		applied, _, err := rep.client.Delete(ctx, id)
		if err == nil && applied {
			mu.Lock()
			deleted = true
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		return false, err
	}
	return deleted, nil
}

// Compact folds every live replica's mutation overlay into its base index.
func (c *Coordinator) Compact(ctx context.Context) error {
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for s := range c.replicas {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			err := c.writeReplicas(s, func(rep *replica) error {
				return rep.client.Compact(ctx)
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	return firstErr
}

// Size sums the live element count over the logical shards (one usable
// replica each).
func (c *Coordinator) Size(ctx context.Context) (int, error) {
	total := 0
	for s := range c.replicas {
		_, st, err := c.queryShard(ctx, s, func(ctx context.Context, cl *Client) ([]shard.Hit, shard.Stats, error) {
			info, err := cl.Info(ctx)
			if err != nil {
				return nil, shard.Stats{}, err
			}
			return nil, shard.Stats{Computations: info.Size}, nil
		})
		if err != nil {
			return 0, err
		}
		total += st.Computations
	}
	return total, nil
}

// Elements dumps the full live cluster content sorted by ID (differential
// and audit hook). Quiesce mutators for a consistent view.
func (c *Coordinator) Elements(ctx context.Context) ([]shard.Element, error) {
	var all []shard.Element
	for s := range c.replicas {
		var elems []shard.Element
		_, _, err := c.queryShard(ctx, s, func(ctx context.Context, cl *Client) ([]shard.Hit, shard.Stats, error) {
			_, es, err := cl.Dump(ctx)
			if err != nil {
				return nil, shard.Stats{}, err
			}
			elems = es
			return nil, shard.Stats{}, nil
		})
		if err != nil {
			return nil, err
		}
		all = append(all, elems...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].ID < all[b].ID })
	return all, nil
}

// probeLoop drives periodic readmission probes until Close.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-ticker.C:
			c.Probe(context.Background())
		}
	}
}

// Probe attempts to readmit every ejected replica: a liveness probe first;
// then, if the replica is stale (it missed replicated writes) or its host
// restarted empty, a re-sync — dump from a healthy peer, reseed the
// recovering replica — under the shard's write lock so no concurrent write
// can fall between dump and reseed. Only a clean, current replica
// re-enters the query rotation. Exposed so tests (and operators) can force
// a readmission cycle.
func (c *Coordinator) Probe(ctx context.Context) {
	for s := range c.replicas {
		for _, rep := range c.replicas[s] {
			if !rep.isEjected() {
				continue
			}
			if _, err := rep.client.Info(ctx); err != nil {
				// A host that crashed and came back answers the probe
				// with 404 "slot not seeded": it is alive but lost its
				// state, which only the re-sync below can restore. Any
				// other failure means still unreachable.
				var api *apiError
				if !errors.As(err, &api) || api.status != http.StatusNotFound {
					continue // still unreachable; try again next cycle
				}
				rep.markStale()
			}
			c.writeMu[s].Lock()
			if rep.isStale() {
				if err := c.resync(ctx, s, rep); err != nil {
					c.writeMu[s].Unlock()
					continue
				}
				rep.clearStale()
			}
			rep.readmit()
			c.writeMu[s].Unlock()
		}
	}
}

// resync rebuilds rep's slot to match a healthy peer replica of shard s.
// The caller holds the shard write lock, so no write can fall between the
// donor capture and the recovering replica's rebuild.
//
// Store-first: when the fleet shares a blob store, the donor publishes an
// incremental snapshot (unchanged shards cost nothing) and the recovering
// replica restores from the store, so the bulk bytes never transit the
// coordinator. The path only counts as a re-sync if the restored
// manifest's digest equals the one the donor just published — equal
// digests mean bit-identical content, while a mismatch means the two
// nodes do not actually share a store (each restored its own stale local
// snapshot) and the full dump transfer below is the only exact option.
func (c *Coordinator) resync(ctx context.Context, s int, rep *replica) error {
	for _, donor := range c.replicas[s] {
		if donor == rep || !donor.healthy() || donor.isStale() {
			continue
		}
		if snap, err := donor.client.Snapshot(ctx); err == nil {
			if got, err := rep.client.Restore(ctx); err == nil && got.ManifestSHA == snap.ManifestSHA {
				c.resyncRestores.Add(1)
				return nil
			}
		}
		labelled, elems, err := donor.client.Dump(ctx)
		if err != nil {
			continue
		}
		if err := rep.client.Seed(ctx, c.cfg.MetricName, labelled, elems); err != nil {
			return err
		}
		c.resyncSeeds.Add(1)
		return nil
	}
	return fmt.Errorf("remote: shard %d: no healthy donor for re-sync", s)
}

// ClusterInfo is the coordinator's /healthz view: placement, counters and
// per-replica health. It is assembled locally — no remote calls — so the
// health endpoint stays responsive when nodes are not.
type ClusterInfo struct {
	Nodes      []string `json:"nodes"`
	Shards     int      `json:"shards"`
	Replicas   int      `json:"replicas"`
	RangeWidth int      `json:"range_width"`
	Labelled   bool     `json:"labelled"`
	NextID     uint64   `json:"next_id"`
	// Healthy reports whether every logical shard has at least one healthy
	// replica (the cluster can answer exactly).
	Healthy bool `json:"healthy"`
	// Hedged and Retried count launched hedge and failover requests.
	Hedged  uint64 `json:"hedged"`
	Retried uint64 `json:"retried"`
	// Overload and cancellation outcomes: queries shed by admission
	// control, abandoned by their clients, out of deadline budget, and
	// answered partially under AllowDegraded.
	Shed             uint64 `json:"shed"`
	Cancelled        uint64 `json:"cancelled"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	DegradedServed   uint64 `json:"degraded_served"`
	// AllowDegraded echoes the partial-answer opt-in; BreakerCooldownMS is
	// the per-replica circuit-breaker open window in force.
	AllowDegraded     bool    `json:"allow_degraded"`
	BreakerCooldownMS float64 `json:"breaker_cooldown_ms"`
	// ResyncRestores and ResyncSeeds count replica re-syncs by transport:
	// blob-store restore (preferred) vs full dump reseed (fallback).
	ResyncRestores uint64 `json:"resync_restores"`
	ResyncSeeds    uint64 `json:"resync_seeds"`
	// HedgeDelayMS is the hedge trigger currently in force.
	HedgeDelayMS float64 `json:"hedge_delay_ms"`
	// ReplicaHealth lists every replica, shard-major.
	ReplicaHealth []ReplicaHealth `json:"replica_health"`
}

// Info returns the current cluster health snapshot.
func (c *Coordinator) Info() ClusterInfo {
	info := ClusterInfo{
		Nodes:             c.cfg.Nodes,
		Shards:            len(c.replicas),
		Replicas:          c.cfg.Replicas,
		RangeWidth:        c.rangeWidth,
		Labelled:          c.labelled,
		NextID:            c.nextID.Load(),
		Healthy:           true,
		Hedged:            c.hedged.Load(),
		Retried:           c.retried.Load(),
		Shed:              c.gate.Shed(),
		Cancelled:         c.cancelled.Load(),
		DeadlineExceeded:  c.deadline.Load(),
		DegradedServed:    c.degraded.Load(),
		AllowDegraded:     c.cfg.AllowDegraded,
		BreakerCooldownMS: float64(c.cfg.BreakerCooldown) / float64(time.Millisecond),
		ResyncRestores:    c.resyncRestores.Load(),
		ResyncSeeds:       c.resyncSeeds.Load(),
		HedgeDelayMS:      float64(c.hedgeDelay()) / float64(time.Millisecond),
	}
	for s := range c.replicas {
		anyHealthy := false
		for _, rep := range c.replicas[s] {
			snap := rep.snapshot(c.cfg.Nodes[rep.node], c.cfg.BreakerCooldown)
			info.ReplicaHealth = append(info.ReplicaHealth, snap)
			anyHealthy = anyHealthy || snap.Healthy
		}
		if !anyHealthy {
			info.Healthy = false
		}
	}
	return info
}

// noteQueryError folds a failed client-facing query into the lifetime
// cancellation counters (the transport layer calls it once per failure).
func (c *Coordinator) noteQueryError(err error) {
	switch {
	case errors.Is(err, context.Canceled):
		c.cancelled.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		c.deadline.Add(1)
	}
}

// Unbounded is the +Inf pruning radius, exported for callers assembling
// bounded queries by hand.
func Unbounded() float64 { return math.Inf(1) }
