// Package remote carries the per-shard query/mutate surface across the
// network: an HTTP/JSON shard server that hosts logical shard slots (each a
// single-shard shard.Set), a client with per-request timeouts and bounded
// retry, and a Coordinator that places ID ranges over the slots, replicates
// every write R ways, fans queries out with the same cross-shard pruning
// bound the in-process Set uses, hedges slow replicas and tracks
// per-replica health with ejection and re-sync-gated readmission.
//
// The exactness argument is the in-process one verbatim: dC is a metric
// (triangle inequality), so a k-NN or radius query answered per shard under
// any pruning bound that never drops below the final k-th-best distance
// merges to the monolithic answer — no matter where the shard lives. The
// transport only moves the search.BoundedKSearcher contract (extended with
// Add/Delete/Info at the set level) across a wire; the cluster differential
// suite in clustertest pins a live cluster to the monolithic engine's
// answers to keep that claim tested rather than assumed.
package remote

import (
	"math"

	"ced/internal/metric"
	"ced/internal/shard"
)

// noBound is the wire encoding of an unbounded (+Inf) pruning radius:
// JSON cannot carry IEEE infinities, so any negative bound means "none".
// The sentinel exists only on the wire: cedvet's boundconv analyzer
// (internal/analysis) rejects any use of a request's Bound field outside
// wireBound/fromWireBound and any negative literal handed to a local
// bounded call, so the encoding cannot leak into pruning arithmetic
// (//ced:boundconv-ok waives a reviewed line).
const noBound = -1

// wireBound encodes a pruning bound for the wire.
func wireBound(b float64) float64 {
	if math.IsInf(b, 1) {
		return noBound
	}
	return b
}

// fromWireBound decodes a wire bound.
func fromWireBound(b float64) float64 {
	if b < 0 {
		return math.Inf(1)
	}
	return b
}

// Wire request bodies. Slot identity rides in the URL path
// (/shard/{slot}/...), so bodies carry only the operation payload.
type (
	seedRequest struct {
		// Metric guards against a topology error: a shard server answering
		// under a different distance than the coordinator expects would
		// silently break cluster exactness, so seeding declares it.
		Metric   string          `json:"metric"`
		Labelled bool            `json:"labelled"`
		Elements []shard.Element `json:"elements"`
	}
	knnRequest struct {
		Query string `json:"query"`
		K     int    `json:"k"`
		// Bound is the coordinator's running cross-cluster pruning radius
		// (negative = unbounded); it seeds the slot set's merge bound.
		Bound float64 `json:"bound"`
	}
	radiusRequest struct {
		Query  string  `json:"query"`
		Radius float64 `json:"radius"`
	}
	addRequest struct {
		ID    uint64 `json:"id"`
		Value string `json:"value"`
		Label int    `json:"label"`
	}
	deleteRequest struct {
		ID uint64 `json:"id"`
	}
)

// Wire response bodies.
type (
	queryResponse struct {
		Hits         []shard.Hit        `json:"hits"`
		Computations int                `json:"computations"`
		Rejections   metric.StageCounts `json:"rejections"`
	}
	mutateResponse struct {
		// Applied reports whether the write changed the slot (false for an
		// idempotent re-delivery or a delete of a dead ID).
		Applied bool `json:"applied"`
		Size    int  `json:"size"`
	}
	// SlotInfo describes one hosted shard slot; the coordinator probes it
	// for health and topology checks.
	SlotInfo struct {
		Metric    string `json:"metric"`
		Algorithm string `json:"algorithm"`
		Labelled  bool   `json:"labelled"`
		Size      int    `json:"size"`
		NextID    uint64 `json:"next_id"`
	}
	dumpResponse struct {
		Labelled bool            `json:"labelled"`
		Elements []shard.Element `json:"elements"`
	}
	// SlotSnapshot reports a slot-level store snapshot or restore: the
	// manifest sequence, the manifest envelope's SHA-256 (the snapshot's
	// identity — equal digests mean bit-identical content) and the slot's
	// live size. Snapshot responses also carry the upload accounting.
	SlotSnapshot struct {
		Seq         uint64 `json:"seq"`
		ManifestSHA string `json:"manifest_sha"`
		Size        int    `json:"size"`
		Uploaded    int    `json:"uploaded,omitempty"`
		Skipped     int    `json:"skipped,omitempty"`
	}
	errorResponse struct {
		Error string `json:"error"`
	}
)

// statsOf converts a slot set's query accounting to the wire form.
func statsOf(st shard.Stats) (int, metric.StageCounts) {
	return st.Computations, st.Rejections
}

// toStats rebuilds shard.Stats from the wire form.
func toStats(comps int, rej metric.StageCounts) shard.Stats {
	return shard.Stats{Computations: comps, Rejections: rej}
}
