package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ced/internal/metric"
	"ced/internal/serve"
	"ced/internal/shard"
)

// maxCoordinatorBody bounds coordinator request bodies; client-facing
// queries are tiny, so this mirrors serve's ceiling rather than the bulky
// shard-transport one.
const maxCoordinatorBody = 8 << 20

// Client-facing request and response bodies, mirroring the cedserve JSON
// API (internal/serve) so a monolithic client retargets a coordinator by
// changing nothing but the URL. Neighbor indexes are the cluster-stable
// global IDs, exactly like the monolithic engine after mutations.
type (
	cKNNRequest struct {
		Query string `json:"query"`
		K     int    `json:"k"`
	}
	cRadiusRequest struct {
		Query  string  `json:"query"`
		Radius float64 `json:"radius"`
	}
	cClassifyRequest struct {
		Query string `json:"query"`
	}
	cAddRequest struct {
		Value *string `json:"value"`
		Label *int    `json:"label"`
	}
	cDeleteRequest struct {
		ID *uint64 `json:"id"`
	}

	cNeighbor struct {
		Index    int     `json:"index"`
		Value    string  `json:"value"`
		Distance float64 `json:"distance"`
	}
	cStageRejections struct {
		Length    int64 `json:"length"`
		Edit      int64 `json:"edit"`
		Heuristic int64 `json:"heuristic"`
		Exact     int64 `json:"exact"`
	}
	cQueryMeta struct {
		Computations int              `json:"computations"`
		Rejections   cStageRejections `json:"rejections"`
		LatencyMS    float64          `json:"latency_ms"`
	}
	// cDegradedMeta tags a partial answer served under AllowDegraded: the
	// named logical shards contributed nothing. Absent (omitted) on every
	// complete answer, so default-mode clients never see the fields.
	cDegradedMeta struct {
		Degraded      bool  `json:"degraded,omitempty"`
		MissingShards []int `json:"missing_shards,omitempty"`
	}
	cKNNResponse struct {
		Results []cNeighbor `json:"results"`
		cQueryMeta
		cDegradedMeta
	}
	cClassifyResponse struct {
		Label    int       `json:"label"`
		Neighbor cNeighbor `json:"neighbor"`
		cQueryMeta
		cDegradedMeta
	}
	cMutateResponse struct {
		ID   uint64 `json:"id"`
		Size int    `json:"size"`
	}
	cHealthResponse struct {
		Status  string      `json:"status"`
		Cluster ClusterInfo `json:"cluster"`
	}
)

func cNeighborOf(h shard.Hit) cNeighbor {
	return cNeighbor{Index: int(h.ID), Value: h.Value, Distance: h.Distance}
}

// cDegraded converts a (possibly nil) *Degraded tag into response metadata.
func cDegraded(deg *Degraded) cDegradedMeta {
	if deg == nil {
		return cDegradedMeta{}
	}
	return cDegradedMeta{Degraded: true, MissingShards: deg.MissingShards}
}

func cMeta(st shard.Stats, start time.Time) cQueryMeta {
	return cQueryMeta{
		Computations: st.Computations,
		Rejections: cStageRejections{
			Length:    st.Rejections[metric.StageLength],
			Edit:      st.Rejections[metric.StageEdit],
			Heuristic: st.Rejections[metric.StageHeuristic],
			Exact:     st.Rejections[metric.StageExact],
		},
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
}

// NewCoordinatorHandler wraps a Coordinator in the client-facing cedserve
// JSON API:
//
//	GET  /healthz     cluster topology, hedge/retry counters, replica health
//	POST /knn         {"query": ..., "k": ...}
//	POST /radius      {"query": ..., "radius": ...}
//	POST /classify    {"query": ...}
//	POST /add         {"value": ..., "label": ...}
//	POST /delete      {"id": ...}
//	POST /compact     (no body)
//
// /healthz answers "ok" while every logical shard has at least one healthy
// replica and "degraded" otherwise (HTTP 200 either way — a degraded
// cluster still answers exactly through its fallback replicas as long as
// one non-stale replica per shard survives).
func NewCoordinatorHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	// query wraps the client-facing search endpoints in the same robustness
	// layer as the monolithic server: admission control (saturating load is
	// shed with 429 + Retry-After) and a cancellable query context carrying
	// the clamped BudgetHeader deadline — which then flows to every shard
	// call, so one edge deadline bounds the whole distributed fan-out.
	query := func(h func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if err := c.gate.Acquire(r.Context()); err != nil {
				writeCoordinatorError(c, w, err)
				return
			}
			defer c.gate.Release()
			ctx, cancel := serve.RequestContext(r)
			defer cancel()
			h(ctx, w, r)
		}
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		info := c.Info()
		status := "ok"
		if !info.Healthy {
			status = "degraded"
		}
		writeJSON(w, http.StatusOK, cHealthResponse{Status: status, Cluster: info})
	})
	mux.HandleFunc("POST /knn", query(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req cKNNRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		start := time.Now()
		hits, st, err := c.KNearest(ctx, req.Query, req.K)
		var deg *Degraded
		if err != nil && !errors.As(err, &deg) {
			writeCoordinatorError(c, w, err)
			return
		}
		results := make([]cNeighbor, len(hits))
		for i, h := range hits {
			results[i] = cNeighborOf(h)
		}
		writeJSON(w, http.StatusOK, cKNNResponse{
			Results: results, cQueryMeta: cMeta(st, start), cDegradedMeta: cDegraded(deg),
		})
	}))
	mux.HandleFunc("POST /radius", query(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req cRadiusRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.Radius < 0 {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("radius must be non-negative (got %g)", req.Radius))
			return
		}
		start := time.Now()
		hits, st, err := c.Radius(ctx, req.Query, req.Radius)
		var deg *Degraded
		if err != nil && !errors.As(err, &deg) {
			writeCoordinatorError(c, w, err)
			return
		}
		results := make([]cNeighbor, len(hits))
		for i, h := range hits {
			results[i] = cNeighborOf(h)
		}
		writeJSON(w, http.StatusOK, cKNNResponse{
			Results: results, cQueryMeta: cMeta(st, start), cDegradedMeta: cDegraded(deg),
		})
	}))
	mux.HandleFunc("POST /classify", query(func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req cClassifyRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		start := time.Now()
		hit, st, err := c.Classify(ctx, req.Query)
		var deg *Degraded
		if err != nil && !errors.As(err, &deg) {
			writeCoordinatorError(c, w, err)
			return
		}
		writeJSON(w, http.StatusOK, cClassifyResponse{
			Label: hit.Label, Neighbor: cNeighborOf(hit),
			cQueryMeta: cMeta(st, start), cDegradedMeta: cDegraded(deg),
		})
	}))
	mux.HandleFunc("POST /add", func(w http.ResponseWriter, r *http.Request) {
		var req cAddRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.Value == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("add needs a \"value\" field"))
			return
		}
		if c.Labelled() && req.Label == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("the corpus is labelled; add needs a \"label\" field"))
			return
		}
		label := 0
		if req.Label != nil {
			label = *req.Label
		}
		id, err := c.Add(r.Context(), *req.Value, label)
		if err != nil {
			writeCoordinatorError(c, w, err)
			return
		}
		size, _ := c.Size(r.Context()) // best effort; 0 when the probe fails
		writeJSON(w, http.StatusOK, cMutateResponse{ID: id, Size: size})
	})
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) {
		var req cDeleteRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.ID == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("delete needs an \"id\" field"))
			return
		}
		deleted, err := c.Delete(r.Context(), *req.ID)
		if err != nil {
			writeCoordinatorError(c, w, err)
			return
		}
		if !deleted {
			writeRemoteError(w, http.StatusNotFound, fmt.Errorf("no live element with id %d", *req.ID))
			return
		}
		size, _ := c.Size(r.Context())
		writeJSON(w, http.StatusOK, cMutateResponse{ID: *req.ID, Size: size})
	})
	mux.HandleFunc("POST /compact", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Compact(r.Context()); err != nil {
			writeCoordinatorError(c, w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})
	return mux
}

// decodeCoordinator parses a client-facing JSON body with serve's
// strictness: unknown fields rejected, oversized bodies capped.
func decodeCoordinator(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxCoordinatorBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeRemoteError(w, status, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeCoordinatorError maps a coordinator failure to a status: shed load
// is 429 with a Retry-After hint, a vanished client is 499, an exhausted
// deadline budget is 504, caller mistakes (bad k, unlabelled classify) are
// 400s, shard-server rejections keep their status, and cluster faults
// (every replica of a shard down) are 502s — so clients and load balancers
// can tell "back off" from "you asked wrong" from "the cluster is hurt".
// Cancellation outcomes are folded into the coordinator's /healthz
// counters.
func writeCoordinatorError(c *Coordinator, w http.ResponseWriter, err error) {
	c.noteQueryError(err)
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(c.gate.RetryAfter()))
		writeRemoteError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, context.Canceled):
		writeRemoteError(w, serve.StatusClientClosedRequest, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		writeRemoteError(w, http.StatusGatewayTimeout, err)
		return
	}
	var bad *badRequestError
	if errors.As(err, &bad) {
		writeRemoteError(w, http.StatusBadRequest, err)
		return
	}
	var api *apiError
	if errors.As(err, &api) {
		writeRemoteError(w, api.status, err)
		return
	}
	writeRemoteError(w, http.StatusBadGateway, err)
}
