package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ced/internal/metric"
	"ced/internal/shard"
)

// maxCoordinatorBody bounds coordinator request bodies; client-facing
// queries are tiny, so this mirrors serve's ceiling rather than the bulky
// shard-transport one.
const maxCoordinatorBody = 8 << 20

// Client-facing request and response bodies, mirroring the cedserve JSON
// API (internal/serve) so a monolithic client retargets a coordinator by
// changing nothing but the URL. Neighbor indexes are the cluster-stable
// global IDs, exactly like the monolithic engine after mutations.
type (
	cKNNRequest struct {
		Query string `json:"query"`
		K     int    `json:"k"`
	}
	cRadiusRequest struct {
		Query  string  `json:"query"`
		Radius float64 `json:"radius"`
	}
	cClassifyRequest struct {
		Query string `json:"query"`
	}
	cAddRequest struct {
		Value *string `json:"value"`
		Label *int    `json:"label"`
	}
	cDeleteRequest struct {
		ID *uint64 `json:"id"`
	}

	cNeighbor struct {
		Index    int     `json:"index"`
		Value    string  `json:"value"`
		Distance float64 `json:"distance"`
	}
	cStageRejections struct {
		Length    int64 `json:"length"`
		Edit      int64 `json:"edit"`
		Heuristic int64 `json:"heuristic"`
		Exact     int64 `json:"exact"`
	}
	cQueryMeta struct {
		Computations int              `json:"computations"`
		Rejections   cStageRejections `json:"rejections"`
		LatencyMS    float64          `json:"latency_ms"`
	}
	cKNNResponse struct {
		Results []cNeighbor `json:"results"`
		cQueryMeta
	}
	cClassifyResponse struct {
		Label    int       `json:"label"`
		Neighbor cNeighbor `json:"neighbor"`
		cQueryMeta
	}
	cMutateResponse struct {
		ID   uint64 `json:"id"`
		Size int    `json:"size"`
	}
	cHealthResponse struct {
		Status  string      `json:"status"`
		Cluster ClusterInfo `json:"cluster"`
	}
)

func cNeighborOf(h shard.Hit) cNeighbor {
	return cNeighbor{Index: int(h.ID), Value: h.Value, Distance: h.Distance}
}

func cMeta(st shard.Stats, start time.Time) cQueryMeta {
	return cQueryMeta{
		Computations: st.Computations,
		Rejections: cStageRejections{
			Length:    st.Rejections[metric.StageLength],
			Edit:      st.Rejections[metric.StageEdit],
			Heuristic: st.Rejections[metric.StageHeuristic],
			Exact:     st.Rejections[metric.StageExact],
		},
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
}

// NewCoordinatorHandler wraps a Coordinator in the client-facing cedserve
// JSON API:
//
//	GET  /healthz     cluster topology, hedge/retry counters, replica health
//	POST /knn         {"query": ..., "k": ...}
//	POST /radius      {"query": ..., "radius": ...}
//	POST /classify    {"query": ...}
//	POST /add         {"value": ..., "label": ...}
//	POST /delete      {"id": ...}
//	POST /compact     (no body)
//
// /healthz answers "ok" while every logical shard has at least one healthy
// replica and "degraded" otherwise (HTTP 200 either way — a degraded
// cluster still answers exactly through its fallback replicas as long as
// one non-stale replica per shard survives).
func NewCoordinatorHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		info := c.Info()
		status := "ok"
		if !info.Healthy {
			status = "degraded"
		}
		writeJSON(w, http.StatusOK, cHealthResponse{Status: status, Cluster: info})
	})
	mux.HandleFunc("POST /knn", func(w http.ResponseWriter, r *http.Request) {
		var req cKNNRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		start := time.Now()
		hits, st, err := c.KNearest(r.Context(), req.Query, req.K)
		if err != nil {
			writeCoordinatorError(w, err)
			return
		}
		results := make([]cNeighbor, len(hits))
		for i, h := range hits {
			results[i] = cNeighborOf(h)
		}
		writeJSON(w, http.StatusOK, cKNNResponse{Results: results, cQueryMeta: cMeta(st, start)})
	})
	mux.HandleFunc("POST /radius", func(w http.ResponseWriter, r *http.Request) {
		var req cRadiusRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.Radius < 0 {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("radius must be non-negative (got %g)", req.Radius))
			return
		}
		start := time.Now()
		hits, st, err := c.Radius(r.Context(), req.Query, req.Radius)
		if err != nil {
			writeCoordinatorError(w, err)
			return
		}
		results := make([]cNeighbor, len(hits))
		for i, h := range hits {
			results[i] = cNeighborOf(h)
		}
		writeJSON(w, http.StatusOK, cKNNResponse{Results: results, cQueryMeta: cMeta(st, start)})
	})
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		var req cClassifyRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		start := time.Now()
		hit, st, err := c.Classify(r.Context(), req.Query)
		if err != nil {
			writeCoordinatorError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cClassifyResponse{
			Label: hit.Label, Neighbor: cNeighborOf(hit), cQueryMeta: cMeta(st, start),
		})
	})
	mux.HandleFunc("POST /add", func(w http.ResponseWriter, r *http.Request) {
		var req cAddRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.Value == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("add needs a \"value\" field"))
			return
		}
		if c.Labelled() && req.Label == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("the corpus is labelled; add needs a \"label\" field"))
			return
		}
		label := 0
		if req.Label != nil {
			label = *req.Label
		}
		id, err := c.Add(r.Context(), *req.Value, label)
		if err != nil {
			writeCoordinatorError(w, err)
			return
		}
		size, _ := c.Size(r.Context()) // best effort; 0 when the probe fails
		writeJSON(w, http.StatusOK, cMutateResponse{ID: id, Size: size})
	})
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, r *http.Request) {
		var req cDeleteRequest
		if !decodeCoordinator(w, r, &req) {
			return
		}
		if req.ID == nil {
			writeRemoteError(w, http.StatusBadRequest, fmt.Errorf("delete needs an \"id\" field"))
			return
		}
		deleted, err := c.Delete(r.Context(), *req.ID)
		if err != nil {
			writeCoordinatorError(w, err)
			return
		}
		if !deleted {
			writeRemoteError(w, http.StatusNotFound, fmt.Errorf("no live element with id %d", *req.ID))
			return
		}
		size, _ := c.Size(r.Context())
		writeJSON(w, http.StatusOK, cMutateResponse{ID: *req.ID, Size: size})
	})
	mux.HandleFunc("POST /compact", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Compact(r.Context()); err != nil {
			writeCoordinatorError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
		}{"ok"})
	})
	return mux
}

// decodeCoordinator parses a client-facing JSON body with serve's
// strictness: unknown fields rejected, oversized bodies capped.
func decodeCoordinator(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxCoordinatorBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeRemoteError(w, status, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	return true
}

// writeCoordinatorError maps a coordinator failure to a status: caller
// mistakes (bad k, unlabelled classify) are 400s, shard-server rejections
// keep their status, and cluster faults (every replica of a shard down)
// are 502s — so clients and load balancers can tell "you asked wrong" from
// "the cluster is hurt".
func writeCoordinatorError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	if errors.As(err, &bad) {
		writeRemoteError(w, http.StatusBadRequest, err)
		return
	}
	var api *apiError
	if errors.As(err, &api) {
		writeRemoteError(w, api.status, err)
		return
	}
	writeRemoteError(w, http.StatusBadGateway, err)
}
