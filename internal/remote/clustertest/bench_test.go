package clustertest

import (
	"context"
	"sort"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/metric"
	"ced/internal/serve"
)

// benchCorpus is shared by the cluster and monolithic k-NN benchmarks so
// the pair isolates the wire + coordination overhead, not a data change.
const (
	benchCorpusSize = 2000
	benchK          = 3
)

func benchQueries(n int) []string {
	d := dataset.Spanish(benchCorpusSize, 5)
	qs := make([]string, n)
	for i := range qs {
		qs[i] = d.Strings[(i*37)%len(d.Strings)] + "s"
	}
	return qs
}

// BenchmarkClusterKNN measures a k-NN query through the full distributed
// stack: coordinator fan-out over a loopback 2-node, 2-shard, R=2 cluster,
// JSON wire hops, merge with the cross-shard bound. Compare against
// BenchmarkMonolithicKNN (same corpus, same logical sharding, no wire) for
// the distribution overhead; see BENCH.md "Cluster benchmarks".
func BenchmarkClusterKNN(b *testing.B) {
	d := dataset.Spanish(benchCorpusSize, 5)
	c := Start(b, Config{
		Nodes: 2, Shards: 2, Replicas: 2,
		Algorithm: "laesa", Pivots: 16, Seed: 1,
		Timeout: 30 * time.Second,
	}, d.Strings, nil)
	qs := benchQueries(64)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Coord.KNearest(ctx, qs[i%len(qs)], benchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonolithicKNN is the in-process baseline for BenchmarkClusterKNN:
// the same corpus behind a 2-shard serving engine, no coordinator and no
// wire.
func BenchmarkMonolithicKNN(b *testing.B) {
	d := dataset.Spanish(benchCorpusSize, 5)
	m, err := metric.ByName("dC")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := serve.New(d.Strings, nil, m, serve.Config{
		Algorithm: "laesa", Pivots: 16, Seed: 1, Shards: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.KNearest(qs[i%len(qs)], benchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterKNNSlowReplica measures tail latency with one of the two
// nodes serving correctly but 5ms late — the failure hedging exists for.
// hedge=on races the other replica after a fixed 1ms; hedge=off waits the
// slow node out. Each sub-benchmark reports the measured p99 in µs
// alongside ns/op: the acceptance story is the p99 gap between the two.
func BenchmarkClusterKNNSlowReplica(b *testing.B) {
	const slow = 5 * time.Millisecond
	cases := []struct {
		name  string
		hedge time.Duration
	}{
		{"hedge=on", 1 * time.Millisecond},
		{"hedge=off", -1},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			d := dataset.Spanish(benchCorpusSize, 5)
			c := Start(b, Config{
				Nodes: 2, Shards: 2, Replicas: 2,
				Algorithm: "laesa", Pivots: 16, Seed: 1,
				Timeout:    30 * time.Second,
				HedgeAfter: tc.hedge,
			}, d.Strings, nil)
			c.Nodes[1].SetSlow(slow)
			qs := benchQueries(64)
			ctx := context.Background()
			lats := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, _, err := c.Coord.KNearest(ctx, qs[i%len(qs)], benchK); err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			idx := int(float64(len(lats)) * 0.99)
			if idx >= len(lats) {
				idx = len(lats) - 1
			}
			b.ReportMetric(float64(lats[idx])/1e3, "p99-µs")
		})
	}
}
