package clustertest

import (
	"context"
	"strings"
	"testing"
	"time"

	"ced/internal/blob"
	"ced/internal/dataset"
)

// TestClusterRestartStoreResync replays the crash-restart recovery of
// TestClusterCrashRestartReadmission on a fleet that shares a blob store,
// and pins the transport the re-sync takes: the donor publishes an
// incremental slot snapshot, the restarted node restores the same digest
// from the store, and the full dump transfer never runs. The readmitted
// node must then answer the oracle on its own — a store restore that
// readmits a stale or empty replica would silently break cluster
// exactness, so the answers are the real assertion.
func TestClusterRestartStoreResync(t *testing.T) {
	d := dataset.Spanish(120, 11)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 3
	}
	queries := []string{"casa", d.Strings[7], d.Strings[113] + "s"}
	store := blob.NewFaultStore(blob.NewMemStore())
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 2,
		Timeout: 300 * time.Millisecond,
		Store:   store,
	}, d.Strings, labels)
	o := NewOracle(c.Metric, d.Strings, labels)
	ctx := context.Background()

	// Eject node 1's replicas through read failures, then bring the
	// process back empty at the same address.
	c.Nodes[1].SetFault(FaultDown)
	for round := 0; round < 4; round++ {
		for _, q := range queries {
			assertClusterKNN(t, o, c, q, 5, "node-down")
		}
	}
	c.Heal()
	c.Nodes[1].Restart(t)
	store.ResetCounters()
	c.Coord.Probe(ctx)

	info := c.Coord.Info()
	if !info.Healthy {
		t.Fatalf("cluster unhealthy after restart+probe: %+v", info.ReplicaHealth)
	}
	for _, rh := range nodeHealth(info, c.Nodes[1].Srv.URL) {
		if !rh.Healthy || rh.Stale || rh.Readmissions == 0 {
			t.Fatalf("restarted replica not re-synced and readmitted: %+v", rh)
		}
	}
	if info.ResyncRestores == 0 {
		t.Fatalf("re-sync should have gone through the shared store: %+v", info)
	}
	if info.ResyncSeeds != 0 {
		t.Fatalf("store-first re-sync fell back to dump transfer %d times", info.ResyncSeeds)
	}
	if puts, gets, _, _ := store.Counts(); puts == 0 || gets == 0 {
		t.Fatalf("store re-sync moved no bytes through the store: puts=%d gets=%d", puts, gets)
	}

	// The restored slots must carry the corpus: kill the donor node and
	// pin the restarted node's answers alone.
	c.Nodes[0].SetFault(Fault500)
	for _, q := range queries {
		assertClusterKNN(t, o, c, q, 5, "store-restored-serving")
		assertClusterClassify(t, o, c, q, "store-restored-serving")
	}

	// A second crash of the same node re-syncs incrementally: nothing
	// changed since the last publish, so the donor's snapshot re-uploads
	// no shard objects (at most a manifest) before the restore.
	c.Heal()
	c.Nodes[1].Restart(t)
	store.ResetCounters()
	c.Coord.Probe(ctx)
	info = c.Coord.Info()
	if !info.Healthy || info.ResyncRestores < 2 {
		t.Fatalf("second restart should restore from store again: %+v", info)
	}
	for _, k := range store.PutKeys() {
		if !strings.Contains(k, "/manifest/") {
			t.Fatalf("unchanged slot re-uploaded object %q on second re-sync", k)
		}
	}
}
