package clustertest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/remote"
)

// nodeHealth extracts the replica-health rows living on the given node URL.
func nodeHealth(info remote.ClusterInfo, nodeURL string) []remote.ReplicaHealth {
	var out []remote.ReplicaHealth
	for _, rh := range info.ReplicaHealth {
		if rh.Node == nodeURL {
			out = append(out, rh)
		}
	}
	return out
}

// TestClusterFaultInjection drives one replica node through every failure
// mode — 5xx responses, hanging past the client deadline, cutting the
// connection mid-stream, dropping dead — and asserts the cluster's whole
// story: answers stay pinned to the oracle throughout (retry/hedge/failover
// hide the fault), replicated writes land and eject the faulty node as
// stale, /healthz reports the ejection, and after healing a probe re-syncs
// and readmits the node — verified by failing over to it and pinning its
// answers again.
func TestClusterFaultInjection(t *testing.T) {
	d := dataset.Spanish(120, 7)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 3
	}
	queries := []string{"casa", "arbol", d.Strings[10], d.Strings[119] + "s"}

	cases := []struct {
		name string
		mode FaultMode
	}{
		{"error500", Fault500},
		{"hang", FaultHang},
		{"cut-mid-stream", FaultCut},
		{"down", FaultDown},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Start(t, Config{
				Nodes: 2, Shards: 2, Replicas: 2,
				Timeout:    300 * time.Millisecond,
				HedgeAfter: 10 * time.Millisecond,
			}, d.Strings, labels)
			o := NewOracle(c.Metric, d.Strings, labels)
			ctx := context.Background()

			for _, q := range queries {
				assertClusterKNN(t, o, c, q, 5, "baseline")
			}

			c.Nodes[1].SetFault(tc.mode)

			// Queries stay exact while one replica of every shard misbehaves.
			for round := 0; round < 3; round++ {
				for _, q := range queries {
					assertClusterKNN(t, o, c, q, 5, "faulted-read")
				}
			}
			if tc.mode == FaultHang {
				if hedged := c.Coord.Info().Hedged; hedged == 0 {
					t.Fatal("hanging replica never triggered a hedged request")
				}
			}
			if c.Nodes[1].Faulted() == 0 {
				t.Fatal("fault layer never saw a request — the test exercised nothing")
			}

			// Replicated writes succeed through the surviving replicas and
			// eject the faulty node as stale (it missed them).
			var added []uint64
			for i := 0; i < 4; i++ {
				v := fmt.Sprintf("herida%02d", i)
				id, err := c.Coord.Add(ctx, v, i%3)
				if err != nil {
					t.Fatalf("add under fault: %v", err)
				}
				o.Add(id, v, i%3)
				added = append(added, id)
			}
			// Deletes aimed at both ID ranges, so every logical shard takes
			// a replicated write and the faulty node misses one per shard
			// (IDs 5 and 65 fall in shard 0's and shard 1's range: width
			// ceil(120/2) = 60).
			for _, victim := range []uint64{5, 65} {
				if deleted, err := c.Coord.Delete(ctx, victim); err != nil || !deleted {
					t.Fatalf("delete %d under fault: applied=%v err=%v", victim, deleted, err)
				}
				o.Delete(victim)
			}

			info := c.Coord.Info()
			faulty := nodeHealth(info, c.Nodes[1].Srv.URL)
			if len(faulty) != 2 {
				t.Fatalf("%d replica rows for the faulty node, want 2", len(faulty))
			}
			for _, rh := range faulty {
				if rh.Healthy || !rh.Stale || rh.Ejections == 0 {
					t.Fatalf("faulty replica not ejected+stale after missed writes: %+v", rh)
				}
			}
			// Both logical shards still have their node-0 replica, so the
			// cluster as a whole must still report healthy.
			if !info.Healthy {
				t.Fatalf("cluster lost quorum with one faulty node: %+v", info.ReplicaHealth)
			}

			// Post-mutation answers remain pinned with half the replicas gone.
			for _, q := range append(queries, "herida00", "herida03") {
				assertClusterKNN(t, o, c, q, 5, "faulted-mutated")
				assertClusterClassify(t, o, c, q, "faulted-mutated")
			}

			// Heal and probe: the stale replicas re-sync from their healthy
			// peers and re-enter the rotation.
			c.Heal()
			c.Coord.Probe(ctx)
			info = c.Coord.Info()
			if !info.Healthy {
				t.Fatalf("cluster unhealthy after heal+probe: %+v", info.ReplicaHealth)
			}
			for _, rh := range nodeHealth(info, c.Nodes[1].Srv.URL) {
				if !rh.Healthy || rh.Stale || rh.Readmissions == 0 {
					t.Fatalf("healed replica not readmitted: %+v", rh)
				}
			}

			// Prove the readmitted replicas really carry the post-fault
			// corpus: fail the other node over and pin their answers.
			c.Nodes[0].SetFault(Fault500)
			for _, q := range append(queries, "herida01") {
				assertClusterKNN(t, o, c, q, 5, "failed-over")
			}
			if deleted, err := c.Coord.Delete(ctx, added[0]); err != nil || !deleted {
				t.Fatalf("delete after failover: applied=%v err=%v", deleted, err)
			}
			o.Delete(added[0])
			for _, q := range queries {
				assertClusterKNN(t, o, c, q, 5, "failed-over-mutated")
			}
			c.Heal()
			c.Coord.Probe(ctx)
			if info := c.Coord.Info(); !info.Healthy {
				t.Fatalf("cluster unhealthy after final heal: %+v", info.ReplicaHealth)
			}
		})
	}
}

// TestClusterCrashRestartReadmission covers the recovery path the healed
// faults above cannot: a node that died and came back EMPTY. Its replicas
// were ejected for read failures — never marked stale, since no write
// missed them — yet readmitting without a re-sync would put empty slots
// back in the rotation. The probe must recognise the 404 "slot not
// seeded" liveness answer as lost state, re-sync from a healthy peer and
// only then readmit.
func TestClusterCrashRestartReadmission(t *testing.T) {
	d := dataset.Spanish(120, 11)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 3
	}
	queries := []string{"casa", d.Strings[7], d.Strings[113] + "s"}
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 2,
		Timeout: 300 * time.Millisecond,
	}, d.Strings, labels)
	o := NewOracle(c.Metric, d.Strings, labels)
	ctx := context.Background()

	// Read-only traffic against a dead node ejects its replicas without
	// marking them stale (no write ever missed them).
	c.Nodes[1].SetFault(FaultDown)
	for round := 0; round < 4; round++ {
		for _, q := range queries {
			assertClusterKNN(t, o, c, q, 5, "node-down")
		}
	}
	for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
		if rh.Healthy || rh.Stale || rh.Ejections == 0 {
			t.Fatalf("dead node's replica should be ejected but clean: %+v", rh)
		}
	}

	// The process comes back at the same address with nothing in it.
	c.Heal()
	c.Nodes[1].Restart(t)
	c.Coord.Probe(ctx)

	info := c.Coord.Info()
	if !info.Healthy {
		t.Fatalf("cluster unhealthy after restart+probe: %+v", info.ReplicaHealth)
	}
	for _, rh := range nodeHealth(info, c.Nodes[1].Srv.URL) {
		if !rh.Healthy || rh.Stale || rh.Readmissions == 0 {
			t.Fatalf("restarted replica not re-synced and readmitted: %+v", rh)
		}
	}

	// Prove the readmitted slots really carry the corpus again: kill the
	// donor node and pin answers served by the restarted one alone.
	c.Nodes[0].SetFault(Fault500)
	for _, q := range queries {
		assertClusterKNN(t, o, c, q, 5, "restarted-serving")
		assertClusterClassify(t, o, c, q, "restarted-serving")
	}
}

// TestClusterLosingEveryReplicaFailsLoudly pins the exactness escape hatch:
// when every replica of a shard is unusable the coordinator must return an
// error, never a partial (silently approximate) answer.
func TestClusterLosingEveryReplicaFailsLoudly(t *testing.T) {
	d := dataset.Spanish(60, 9)
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 1, // R=1: each shard has one home
		Timeout: 200 * time.Millisecond,
	}, d.Strings, nil)
	o := NewOracle(c.Metric, d.Strings, nil)

	assertClusterKNN(t, o, c, "casa", 3, "pre-fault")
	c.Nodes[1].SetFault(FaultDown)
	if _, _, err := c.Coord.KNearest(context.Background(), "casa", 3); err == nil {
		t.Fatal("query succeeded with an entire shard unreachable — a partial answer leaked")
	}
	c.Heal()
	c.Coord.Probe(context.Background())
	assertClusterKNN(t, o, c, "casa", 3, "healed")
}
