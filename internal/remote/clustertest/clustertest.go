// Package clustertest boots a full cedserve cluster in-process for the
// differential, fault-injection and stress suites: K shard servers on
// loopback httptest listeners — each wrapped in a fault-injection layer
// that can return 5xx, hang past the client deadline, cut the connection
// mid-stream, slow down, or drop dead — plus a coordinator wired to all of
// them. It also carries the exhaustive-scan Oracle the suites pin cluster
// answers against.
package clustertest

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ced/internal/blob"
	"ced/internal/metric"
	"ced/internal/remote"
)

// FaultMode selects what a node's fault-injection layer does to every
// request it sees.
type FaultMode int32

const (
	// FaultNone serves normally.
	FaultNone FaultMode = iota
	// Fault500 answers every request with HTTP 500.
	Fault500
	// FaultHang holds every request open until the client gives up — the
	// slow-replica failure the hedging path exists for.
	FaultHang
	// FaultCut writes a truncated JSON body and aborts the connection —
	// a node dying mid-stream.
	FaultCut
	// FaultDown closes the connection before writing anything — a dead
	// node, as seen by a client whose TCP connection was accepted by a
	// listener whose process is gone.
	FaultDown
	// FaultSlow delays every request by the node's SetSlow duration, then
	// serves normally — a struggling-but-correct replica for hedging
	// latency measurements.
	FaultSlow
)

// Node is one shard server under test: the engine, its HTTP listener and
// the fault-injection state.
type Node struct {
	Shard *remote.ShardServer
	Srv   *httptest.Server

	cfg     remote.ServerConfig
	handler atomic.Pointer[http.Handler] // swapped by Restart
	mode    atomic.Int32
	slowNS  atomic.Int64
	faulted atomic.Int64 // requests the fault layer interfered with

	// served counts the requests that actually reached the shard handler,
	// keyed by operation (the request path's last segment: "knn", "seed",
	// ...). A request the fault layer swallowed — including a FaultSlow hold
	// whose client cancelled mid-sleep — is never counted, which is exactly
	// what the hedge-cancellation regression test needs to observe.
	servedMu sync.Mutex
	served   map[string]int64
}

// Served reports how many requests for the given operation reached the
// shard handler.
func (n *Node) Served(op string) int64 {
	n.servedMu.Lock()
	defer n.servedMu.Unlock()
	return n.served[op]
}

// noteServed records a request that is about to be handled for real.
func (n *Node) noteServed(path string) {
	op := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		op = path[i+1:]
	}
	n.servedMu.Lock()
	if n.served == nil {
		n.served = make(map[string]int64)
	}
	n.served[op]++
	n.servedMu.Unlock()
}

// Restart simulates a crash-restart: the node keeps its address but every
// seeded slot is gone, exactly like a shard-server process that died and
// came back empty. Recovery must come from the coordinator's probe
// re-sync path — the restarted host answers probes with 404 "slot not
// seeded" until a healthy peer's dump is reseeded into it.
func (n *Node) Restart(t testing.TB) {
	t.Helper()
	ss, err := remote.NewShardServer(n.cfg)
	if err != nil {
		t.Fatalf("clustertest: restarting node: %v", err)
	}
	n.Shard = ss
	h := ss.Handler()
	n.handler.Store(&h)
}

// SetFault switches the node's fault mode (atomic; takes effect on the
// next request).
func (n *Node) SetFault(m FaultMode) { n.mode.Store(int32(m)) }

// SetSlow switches the node to FaultSlow with the given added latency.
func (n *Node) SetSlow(d time.Duration) {
	n.slowNS.Store(int64(d))
	n.mode.Store(int32(FaultSlow))
}

// Faulted reports how many requests the fault layer interfered with.
func (n *Node) Faulted() int64 { return n.faulted.Load() }

// inject wraps the node's current shard handler (an atomic pointer, so
// Restart can swap it under live traffic) in the fault layer.
func (n *Node) inject() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next := *n.handler.Load()
		switch FaultMode(n.mode.Load()) {
		case Fault500:
			n.faulted.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"injected fault"}`))
		case FaultHang:
			n.faulted.Add(1)
			// Hold the request open until the client disconnects (its
			// per-attempt timeout), then return without writing. The body
			// must be drained first: the server only notices a disconnect
			// (and cancels r.Context()) once the request is consumed, and
			// an undetected hang would also wedge the listener's Close.
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
		case FaultCut:
			n.faulted.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"hits":[{"id":`))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		case FaultDown:
			n.faulted.Add(1)
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					_ = conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		case FaultSlow:
			n.faulted.Add(1)
			select {
			case <-time.After(time.Duration(n.slowNS.Load())):
			case <-r.Context().Done():
				// The caller gave up mid-sleep (hedge loser cancelled, or
				// deadline): the shard handler never runs, nothing is served.
				return
			}
			n.noteServed(r.URL.Path)
			next.ServeHTTP(w, r)
		default:
			n.noteServed(r.URL.Path)
			next.ServeHTTP(w, r)
		}
	})
}

// ReplicaClient returns a direct no-retry client for one slot of this node
// — the suites use it to audit per-replica content underneath the
// coordinator.
func (n *Node) ReplicaClient(slot int) *remote.Client {
	return remote.NewClient(n.Srv.URL, slot, remote.ClientConfig{Retries: -1})
}

// Config sizes a test cluster. Zero values get test-friendly defaults:
// 2 nodes, one shard per node, R=1, metric dC, a linear index (no build
// cost), a 1s per-attempt timeout, no client retries (the coordinator's
// replica failover is the layer under test) and no background probe loop
// (tests drive Coordinator.Probe explicitly, keeping readmission timing
// deterministic).
type Config struct {
	Nodes         int
	Shards        int
	Replicas      int
	RangeWidth    int
	MetricName    string
	Algorithm     string
	Pivots        int
	Seed          int64
	Timeout       time.Duration
	Retries       int // 0 = none; > 0 enables client retries
	HedgeAfter    time.Duration
	FailThreshold int
	ProbeInterval time.Duration // 0 = disabled; > 0 enables the loop
	// BreakerCooldown is the circuit-breaker open window; 0 = disabled
	// (ejected-clean replicas are immediately trial-eligible, keeping the
	// suites timing-independent), > 0 enables the window under test.
	BreakerCooldown time.Duration
	// AllowDegraded opts the coordinator into tagged partial answers.
	AllowDegraded bool
	// Store, when set, is shared by every node in the fleet — the layout a
	// real deployment gets from pointing all shard servers at one bucket.
	// It enables the coordinator's store-first re-sync: a donor publishes a
	// slot snapshot and the recovering replica restores the same digest.
	Store blob.Store
}

// Cluster is a running test cluster. Nodes[i] serves the coordinator's
// node i; replica r of logical shard s lives on Nodes[(s+r)%len(Nodes)]
// at slot s.
type Cluster struct {
	Nodes  []*Node
	Coord  *remote.Coordinator
	Metric metric.Metric
}

// Start boots the cluster and seeds it with the corpus; everything shuts
// down via t.Cleanup. labels may be nil for an unlabelled corpus.
func Start(t testing.TB, cfg Config, corpus []string, labels []int) *Cluster {
	t.Helper()
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Nodes
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.MetricName == "" {
		cfg.MetricName = "dC"
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = "linear"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Retries <= 0 {
		cfg.Retries = -1
	}
	probe := cfg.ProbeInterval
	if probe <= 0 {
		probe = -1
	}
	breaker := cfg.BreakerCooldown
	if breaker <= 0 {
		breaker = -1
	}
	m, err := metric.ByName(cfg.MetricName)
	if err != nil {
		t.Fatalf("clustertest: %v", err)
	}
	nodes := make([]*Node, cfg.Nodes)
	urls := make([]string, cfg.Nodes)
	for i := range nodes {
		scfg := remote.ServerConfig{
			Metric:    m,
			Algorithm: cfg.Algorithm,
			Pivots:    cfg.Pivots,
			Seed:      cfg.Seed,
			Store:     cfg.Store,
		}
		ss, err := remote.NewShardServer(scfg)
		if err != nil {
			t.Fatalf("clustertest: node %d: %v", i, err)
		}
		n := &Node{Shard: ss, cfg: scfg}
		h := ss.Handler()
		n.handler.Store(&h)
		n.Srv = httptest.NewServer(n.inject())
		t.Cleanup(n.Srv.Close)
		nodes[i] = n
		urls[i] = n.Srv.URL
	}
	coord, err := remote.NewCoordinator(remote.Config{
		Nodes:           urls,
		Shards:          cfg.Shards,
		Replicas:        cfg.Replicas,
		RangeWidth:      cfg.RangeWidth,
		MetricName:      cfg.MetricName,
		Timeout:         cfg.Timeout,
		Retries:         cfg.Retries,
		HedgeAfter:      cfg.HedgeAfter,
		FailThreshold:   cfg.FailThreshold,
		ProbeInterval:   probe,
		BreakerCooldown: breaker,
		AllowDegraded:   cfg.AllowDegraded,
	})
	if err != nil {
		t.Fatalf("clustertest: %v", err)
	}
	t.Cleanup(coord.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.Seed(ctx, corpus, labels); err != nil {
		t.Fatalf("clustertest: seeding: %v", err)
	}
	return &Cluster{Nodes: nodes, Coord: coord, Metric: m}
}

// Heal clears every node's fault mode.
func (c *Cluster) Heal() {
	for _, n := range c.Nodes {
		n.SetFault(FaultNone)
	}
}

// Oracle is the monolithic reference the suites pin cluster answers to: a
// plain slice of live elements queried by exhaustive scan, mutated in
// lockstep with the cluster. Not safe for concurrent use — stress tests
// apply their recorded mutations after quiescing.
type Oracle struct {
	m      metric.Metric
	ids    []uint64
	values []string
	labels []int
}

// NewOracle mirrors the seeded corpus (element i gets ID i, the
// coordinator's numbering).
func NewOracle(m metric.Metric, corpus []string, labels []int) *Oracle {
	o := &Oracle{m: m}
	for i, v := range corpus {
		label := 0
		if labels != nil {
			label = labels[i]
		}
		o.Add(uint64(i), v, label)
	}
	return o
}

// Add mirrors a cluster add.
func (o *Oracle) Add(id uint64, v string, label int) {
	o.ids = append(o.ids, id)
	o.values = append(o.values, v)
	o.labels = append(o.labels, label)
}

// Delete mirrors a cluster delete, reporting whether the ID was live.
func (o *Oracle) Delete(id uint64) bool {
	for i, oid := range o.ids {
		if oid == id {
			o.ids = append(o.ids[:i], o.ids[i+1:]...)
			o.values = append(o.values[:i], o.values[i+1:]...)
			o.labels = append(o.labels[:i], o.labels[i+1:]...)
			return true
		}
	}
	return false
}

// Size returns the live element count.
func (o *Oracle) Size() int { return len(o.ids) }

// Live returns the live (id, value, label) rows sorted by ID.
func (o *Oracle) Live() (ids []uint64, values []string, labels []int) {
	idx := make([]int, len(o.ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return o.ids[idx[a]] < o.ids[idx[b]] })
	for _, i := range idx {
		ids = append(ids, o.ids[i])
		values = append(values, o.values[i])
		labels = append(labels, o.labels[i])
	}
	return ids, values, labels
}

// KNN returns the oracle's k smallest distances (ascending) and the set of
// IDs strictly below the k-th distance — the tie-insensitive signature a
// correct k-NN answer must reproduce exactly (see the in-process
// differential in internal/shard).
func (o *Oracle) KNN(q string, k int) (dists []float64, below map[uint64]bool, kth float64) {
	type pair struct {
		id uint64
		d  float64
	}
	rq := []rune(q)
	all := make([]pair, len(o.ids))
	for i, v := range o.values {
		all[i] = pair{id: o.ids[i], d: o.m.Distance(rq, []rune(v))}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	kth = math.Inf(1)
	if k > 0 {
		kth = all[k-1].d
	}
	below = map[uint64]bool{}
	for i := 0; i < k; i++ {
		dists = append(dists, all[i].d)
		if all[i].d < kth {
			below[all[i].id] = true
		}
	}
	return dists, below, kth
}

// RadiusIDs returns the exact (id, distance) rows within r of q, sorted by
// (distance, ID) — radius answers have no tie latitude.
func (o *Oracle) RadiusIDs(q string, r float64) (ids []uint64, dists []float64) {
	type pair struct {
		id uint64
		d  float64
	}
	rq := []rune(q)
	var in []pair
	for i, v := range o.values {
		if d := o.m.Distance(rq, []rune(v)); d <= r {
			in = append(in, pair{o.ids[i], d})
		}
	}
	sort.Slice(in, func(a, b int) bool {
		if in[a].d != in[b].d {
			return in[a].d < in[b].d
		}
		return in[a].id < in[b].id
	})
	for _, p := range in {
		ids = append(ids, p.id)
		dists = append(dists, p.d)
	}
	return ids, dists
}

// Distance evaluates the oracle's metric directly.
func (o *Oracle) Distance(a, b string) float64 {
	return o.m.Distance([]rune(a), []rune(b))
}

// BestLabels returns the minimal distance to q and the set of labels
// carried by elements at that distance — any of them is a correct
// classification.
func (o *Oracle) BestLabels(q string) (float64, map[int]bool) {
	rq := []rune(q)
	best := math.Inf(1)
	labels := map[int]bool{}
	for i, v := range o.values {
		d := o.m.Distance(rq, []rune(v))
		switch {
		case d < best:
			best = d
			labels = map[int]bool{o.labels[i]: true}
		case d == best:
			labels[o.labels[i]] = true
		}
	}
	return best, labels
}
