package clustertest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/remote"
)

// TestClusterHedgeCancelsLoser pins the hedged-read cancellation fix: when
// the fast replica wins the race, the slow loser's request must be
// cancelled — observed here as the slow node never serving a single knn
// (its fault layer sees the requests arrive, then sees them cancelled
// mid-sleep), while every answer stays exact. Before per-attempt
// cancellation reached the transport, the loser ran its scan to completion
// and the slow node's served counter grew with every hedged query.
func TestClusterHedgeCancelsLoser(t *testing.T) {
	d := dataset.Spanish(100, 13)
	c := Start(t, Config{
		Nodes: 2, Shards: 1, Replicas: 2,
		Timeout:    2 * time.Second,
		HedgeAfter: 5 * time.Millisecond,
	}, d.Strings, nil)
	o := NewOracle(c.Metric, d.Strings, nil)

	slow := c.Nodes[1]
	slow.SetSlow(500 * time.Millisecond)

	for i := 0; i < 20; i++ {
		assertClusterKNN(t, o, c, d.Strings[i%len(d.Strings)], 5, "hedged")
	}
	if slow.Faulted() == 0 {
		t.Fatal("the slow replica never saw a request — hedging was not exercised")
	}
	if got := slow.Served("knn"); got != 0 {
		t.Fatalf("slow replica served %d knn requests after losing the race — hedge losers are not being cancelled", got)
	}
	if hedged := c.Coord.Info().Hedged; hedged == 0 {
		t.Fatal("no hedged request was ever launched")
	}
}

// TestClusterBreakerFailsFastThenRecovers drives the per-replica circuit
// breaker through its whole life cycle on an R=1 shard: repeated failures
// open it (queries fail fast without touching the sick node), the open
// window holds even after the node heals, and a probe — or the half-open
// trial path below — closes it again.
func TestClusterBreakerFailsFastThenRecovers(t *testing.T) {
	d := dataset.Spanish(60, 17)
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 1,
		Timeout:         200 * time.Millisecond,
		FailThreshold:   1,
		BreakerCooldown: 10 * time.Second, // far longer than the test: open stays open
	}, d.Strings, nil)
	o := NewOracle(c.Metric, d.Strings, nil)
	ctx := context.Background()

	assertClusterKNN(t, o, c, "casa", 3, "baseline")

	// Shard 1's only replica lives on node 1; kill it and trip the breaker.
	c.Nodes[1].SetFault(FaultDown)
	if _, _, err := c.Coord.KNearest(ctx, "casa", 3); err == nil {
		t.Fatal("query succeeded with an entire shard dead")
	}
	for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
		if rh.Breaker != remote.BreakerOpen {
			t.Fatalf("replica breaker is %q after ejection within cooldown, want %q", rh.Breaker, remote.BreakerOpen)
		}
	}

	// Open breaker = fail fast: the sick node receives no further traffic.
	before := c.Nodes[1].Faulted()
	for i := 0; i < 5; i++ {
		if _, _, err := c.Coord.KNearest(ctx, "casa", 3); err == nil {
			t.Fatal("query succeeded through an open breaker")
		}
	}
	if got := c.Nodes[1].Faulted(); got != before {
		t.Fatalf("open breaker let %d requests through to the sick node", got-before)
	}

	// Healing the node does not close the breaker by itself — the cooldown
	// is still running, so queries keep failing fast...
	c.Heal()
	if _, _, err := c.Coord.KNearest(ctx, "casa", 3); err == nil {
		t.Fatal("query succeeded while the breaker was still open")
	}
	// ...until a probe readmits the replica out of band.
	c.Coord.Probe(ctx)
	assertClusterKNN(t, o, c, "casa", 3, "probed")
	for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
		if rh.Breaker != remote.BreakerClosed || rh.Readmissions == 0 {
			t.Fatalf("replica not readmitted after probe: %+v", rh)
		}
	}
}

// TestClusterBreakerHalfOpenTrialReadmits exercises the in-band recovery
// path: once the cooldown elapses the breaker goes half-open, a hedged
// trial query lands on the healed replica, and its success closes the
// breaker — no probe involved.
func TestClusterBreakerHalfOpenTrialReadmits(t *testing.T) {
	d := dataset.Spanish(80, 19)
	c := Start(t, Config{
		Nodes: 2, Shards: 1, Replicas: 2,
		Timeout:         2 * time.Second,
		FailThreshold:   1,
		HedgeAfter:      5 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
	}, d.Strings, nil)
	o := NewOracle(c.Metric, d.Strings, nil)

	// Trip node 1's replica: a couple of queries route its way (directly or
	// via hedge) and its failures eject it.
	c.Nodes[1].SetFault(Fault500)
	for i := 0; i < 4; i++ {
		assertClusterKNN(t, o, c, d.Strings[i], 3, "tripping")
	}
	tripped := false
	for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
		tripped = tripped || !rh.Healthy
	}
	if !tripped {
		t.Fatal("faulty replica was never ejected — the breaker has nothing to recover from")
	}

	// Heal, let the cooldown elapse, and slow the healthy node so the hedge
	// timer fires and routes a trial to the half-open replica.
	c.Heal()
	time.Sleep(80 * time.Millisecond)
	c.Nodes[0].SetSlow(300 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		assertClusterKNN(t, o, c, "casa", 3, "half-open-trial")
		healthy := true
		for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
			healthy = healthy && rh.Healthy
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("half-open trial never readmitted the healed replica: %+v",
				nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL))
		}
	}
	for _, rh := range nodeHealth(c.Coord.Info(), c.Nodes[1].Srv.URL) {
		if rh.Readmissions == 0 {
			t.Fatalf("readmission did not come from the trial path: %+v", rh)
		}
	}
}

// TestClusterDegradedMode covers the opt-in partial-answer escape hatch:
// with AllowDegraded and an entire shard gone, queries return the
// surviving shards' exact hits tagged *remote.Degraded (and the HTTP layer
// surfaces "degraded": true with the missing-shard list) instead of
// failing — while caller mistakes and full outages stay loud.
func TestClusterDegradedMode(t *testing.T) {
	d := dataset.Spanish(60, 23)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 2
	}
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 1,
		Timeout:       200 * time.Millisecond,
		FailThreshold: 1,
		AllowDegraded: true,
	}, d.Strings, labels)
	o := NewOracle(c.Metric, d.Strings, labels)
	ctx := context.Background()

	assertClusterKNN(t, o, c, "casa", 3, "baseline")

	// Kill shard 1's only home. The cluster now answers from shard 0 alone,
	// tagged degraded.
	c.Nodes[1].SetFault(FaultDown)
	hits, _, err := c.Coord.KNearest(ctx, "casa", 10)
	var deg *remote.Degraded
	if !errors.As(err, &deg) {
		t.Fatalf("want a *remote.Degraded error, got %v", err)
	}
	if len(deg.MissingShards) != 1 || deg.MissingShards[0] != 1 {
		t.Fatalf("missing shards %v, want [1]", deg.MissingShards)
	}
	if len(hits) == 0 {
		t.Fatal("degraded answer carried no hits from the surviving shard")
	}
	// Every returned element must belong to shard 0's ID range — the
	// partial answer is exact over the shards that answered.
	width := uint64(c.Coord.RangeWidth())
	for _, h := range hits {
		if int(h.ID/width)%2 != 0 {
			t.Fatalf("degraded answer leaked ID %d from the dead shard", h.ID)
		}
	}

	// The HTTP layer tags the partial answer instead of hiding it.
	h := remote.NewCoordinatorHandler(c.Coord)
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(map[string]any{"query": "casa", "k": 5})
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/knn", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded /knn returned HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results       []any `json:"results"`
		Degraded      bool  `json:"degraded"`
		MissingShards []int `json:"missing_shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || len(resp.MissingShards) != 1 || resp.MissingShards[0] != 1 {
		t.Fatalf("degraded response not tagged: %s", rec.Body.String())
	}
	if info := c.Coord.Info(); info.DegradedServed == 0 {
		t.Fatal("DegradedServed counter never moved")
	}

	// The caller's own cancellation is never absorbed into a degraded
	// answer.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := c.Coord.KNearest(expired, "casa", 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-context query returned %v, want DeadlineExceeded", err)
	}

	// With every shard gone there is no partial answer left: fail loud.
	c.Nodes[0].SetFault(FaultDown)
	if _, _, err := c.Coord.KNearest(ctx, "casa", 3); err == nil || errors.As(err, &deg) {
		t.Fatalf("total outage produced %v, want a loud non-degraded error", err)
	}

	// Recovery: heal, probe, and the full exact answer is back untagged.
	c.Heal()
	c.Coord.Probe(ctx)
	assertClusterKNN(t, o, c, "casa", 3, "healed")
	assertClusterClassify(t, o, c, "casa", "healed")
}
