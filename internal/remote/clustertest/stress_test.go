package clustertest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/shard"
)

// TestClusterMutationStress hammers a 2-replica cluster with concurrent
// Add/Delete/KNearest traffic (run under -race in CI), then quiesces and
// checks the cluster settled to the exact ledger of acknowledged writes:
// the coordinator's merged dump, every replica's individual dump, and a
// fresh round of pinned queries all agree with what the writers recorded.
func TestClusterMutationStress(t *testing.T) {
	d := dataset.Spanish(200, 3)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 4
	}
	c := Start(t, Config{
		Nodes: 2, Shards: 2, Replicas: 2,
		Timeout:       2 * time.Second,
		ProbeInterval: 50 * time.Millisecond, // background probe churns concurrently
	}, d.Strings, labels)
	ctx := context.Background()

	// The ledger of acknowledged writes, appended under its own lock.
	type addRec struct {
		id    uint64
		value string
		label int
	}
	var mu sync.Mutex
	var adds []addRec
	var dels []uint64

	const writers, readers, opsPerWorker = 4, 2, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				if rng.Intn(3) < 2 {
					v := fmt.Sprintf("estres-%d-%02d", w, i)
					label := rng.Intn(4)
					id, err := c.Coord.Add(ctx, v, label)
					if err != nil {
						t.Errorf("writer %d: add: %v", w, err)
						return
					}
					mu.Lock()
					adds = append(adds, addRec{id, v, label})
					mu.Unlock()
				} else {
					victim := uint64(rng.Intn(len(d.Strings)))
					deleted, err := c.Coord.Delete(ctx, victim)
					if err != nil {
						t.Errorf("writer %d: delete %d: %v", w, victim, err)
						return
					}
					if deleted {
						mu.Lock()
						dels = append(dels, victim)
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < opsPerWorker; i++ {
				q := d.Strings[rng.Intn(len(d.Strings))]
				hits, _, err := c.Coord.KNearest(ctx, q, 5)
				if err != nil {
					t.Errorf("reader %d: knn %q: %v", r, q, err)
					return
				}
				if len(hits) == 0 || len(hits) > 5 {
					t.Errorf("reader %d: knn %q returned %d hits", r, q, len(hits))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: replay the acknowledged ledger into an oracle and pin the
	// settled cluster against it.
	o := NewOracle(c.Metric, d.Strings, labels)
	for _, a := range adds {
		o.Add(a.id, a.value, a.label)
	}
	for _, id := range dels {
		o.Delete(id)
	}

	elems, err := c.Coord.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ids, values, olabels := o.Live()
	if len(elems) != len(ids) {
		t.Fatalf("settled cluster has %d live elements, ledger says %d", len(elems), len(ids))
	}
	for i, e := range elems {
		if e.ID != ids[i] || e.Value != values[i] || e.Label != olabels[i] {
			t.Fatalf("settled row %d: cluster (%d,%q,%d), ledger (%d,%q,%d)",
				i, e.ID, e.Value, e.Label, ids[i], values[i], olabels[i])
		}
	}

	// Every replica of every shard must hold exactly the ledger's slice of
	// its ID range — replication left no divergence behind.
	width := c.Coord.RangeWidth()
	shards := c.Coord.Shards()
	for s := 0; s < shards; s++ {
		want := map[uint64]shard.Element{}
		for i, id := range ids {
			if int(id/uint64(width))%shards == s {
				want[id] = shard.Element{ID: id, Value: values[i], Label: olabels[i]}
			}
		}
		for r := 0; r < c.Coord.Replicas(); r++ {
			node := c.Nodes[(s+r)%len(c.Nodes)]
			_, got, err := node.ReplicaClient(s).Dump(ctx)
			if err != nil {
				t.Fatalf("dump shard %d replica %d: %v", s, r, err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard %d replica %d holds %d elements, ledger slice has %d",
					s, r, len(got), len(want))
			}
			for _, e := range got {
				if w, ok := want[e.ID]; !ok || w != e {
					t.Fatalf("shard %d replica %d diverged at ID %d: %+v vs %+v", s, r, e.ID, e, want[e.ID])
				}
			}
		}
	}

	// And a final pinned query round over the settled corpus.
	for _, q := range []string{"casa", d.Strings[0], "estres-0-00"} {
		assertClusterKNN(t, o, c, q, 8, "settled")
		assertClusterClassify(t, o, c, q, "settled")
	}
}
