package clustertest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/metric"
	"ced/internal/serve"
)

// assertClusterKNN pins a cluster k-NN answer to the oracle with the
// tie-insensitive signature the in-process differential uses: identical
// distance multiset, every sub-kth element present, every returned hit at
// a distance the metric confirms for that value.
func assertClusterKNN(t *testing.T, o *Oracle, c *Cluster, q string, k int, tag string) {
	t.Helper()
	hits, _, err := c.Coord.KNearest(context.Background(), q, k)
	if err != nil {
		t.Fatalf("%s query %q: %v", tag, q, err)
	}
	dists, below, kth := o.KNN(q, k)
	if len(hits) != len(dists) {
		t.Fatalf("%s query %q: %d hits, oracle has %d", tag, q, len(hits), len(dists))
	}
	for i, h := range hits {
		if h.Distance != dists[i] {
			t.Fatalf("%s query %q rank %d: distance %v, oracle %v", tag, q, i, h.Distance, dists[i])
		}
		if h.Distance < kth && !below[h.ID] {
			t.Fatalf("%s query %q rank %d: sub-kth hit %d not in oracle's sub-kth set", tag, q, i, h.ID)
		}
		if want := o.Distance(q, h.Value); want != h.Distance {
			t.Fatalf("%s query %q: hit %d reports distance %v but is at %v", tag, q, h.ID, h.Distance, want)
		}
		delete(below, h.ID)
	}
	if len(below) > 0 {
		t.Fatalf("%s query %q: cluster answer missed sub-kth elements %v", tag, q, below)
	}
}

// assertClusterRadius pins a radius answer exactly — range queries have no
// tie latitude, so IDs and distances must match the oracle bit for bit.
func assertClusterRadius(t *testing.T, o *Oracle, c *Cluster, q string, r float64, tag string) {
	t.Helper()
	hits, _, err := c.Coord.Radius(context.Background(), q, r)
	if err != nil {
		t.Fatalf("%s radius %q r=%v: %v", tag, q, r, err)
	}
	ids, dists := o.RadiusIDs(q, r)
	if len(hits) != len(ids) {
		t.Fatalf("%s radius %q r=%v: %d hits, oracle has %d", tag, q, r, len(hits), len(ids))
	}
	for i, h := range hits {
		if h.ID != ids[i] || h.Distance != dists[i] {
			t.Fatalf("%s radius %q r=%v rank %d: got (%d, %v), oracle (%d, %v)",
				tag, q, r, i, h.ID, h.Distance, ids[i], dists[i])
		}
	}
}

// assertClusterClassify pins a classification to a minimal-distance label.
func assertClusterClassify(t *testing.T, o *Oracle, c *Cluster, q string, tag string) {
	t.Helper()
	hit, _, err := c.Coord.Classify(context.Background(), q)
	if err != nil {
		t.Fatalf("%s classify %q: %v", tag, q, err)
	}
	best, labels := o.BestLabels(q)
	if hit.Distance != best {
		t.Fatalf("%s classify %q: nearest at %v, oracle at %v", tag, q, hit.Distance, best)
	}
	if !labels[hit.Label] {
		t.Fatalf("%s classify %q: label %d is not the label of any minimal-distance element", tag, q, hit.Label)
	}
}

// TestClusterMatchesMonolithic is the cluster acceptance differential: a
// 2-node, 4-shard, R=2 cluster over a 1k-string corpus must return the
// same k-NN result sets (modulo equal-distance ties at the k-th rank), the
// same radius result sets (exactly) and the same classifications as both
// an exhaustive-scan oracle and a monolithic serving engine — before and
// after interleaved Add/Delete/compaction, with the engine and the
// coordinator kept in mutation lockstep (same minted IDs, same delete
// outcomes, same live size).
func TestClusterMatchesMonolithic(t *testing.T) {
	d := dataset.Spanish(1000, 11)
	labels := make([]int, len(d.Strings))
	for i := range labels {
		labels[i] = i % 5
	}
	queries := []string{"casa", "perros", "quesadilla", "xyzzyx", "a",
		d.Strings[3], d.Strings[500] + "o", d.Strings[999]}

	c := Start(t, Config{
		Nodes: 2, Shards: 4, Replicas: 2,
		MetricName: "dC", Algorithm: "laesa", Pivots: 12, Seed: 99,
		// Compacting a LAESA slot rebuilds its pivot table, which outlives
		// the default 1s per-attempt timeout under -race.
		Timeout: 60 * time.Second,
	}, d.Strings, labels)
	o := NewOracle(c.Metric, d.Strings, labels)

	m, err := metric.ByName("dC")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(d.Strings, labels, m, serve.Config{
		Algorithm: "laesa", Pivots: 12, Seed: 99, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	check := func(tag string, qs []string) {
		t.Helper()
		for _, q := range qs {
			assertClusterKNN(t, o, c, q, 10, tag)
			assertClusterClassify(t, o, c, q, tag)
			// Pin the radius at the oracle's 5th-nearest distance so the
			// range answer is non-trivial for every query.
			dists, _, _ := o.KNN(q, 5)
			assertClusterRadius(t, o, c, q, dists[len(dists)-1], tag)
			// And pin the monolithic engine to the same distance multiset,
			// tying the two serving stacks together through the oracle.
			ns, _, err := eng.KNearest(q, 10)
			if err != nil {
				t.Fatalf("%s engine knn %q: %v", tag, q, err)
			}
			odists, _, _ := o.KNN(q, 10)
			if len(ns) != len(odists) {
				t.Fatalf("%s engine knn %q: %d results, oracle %d", tag, q, len(ns), len(odists))
			}
			for i := range ns {
				if ns[i].Distance != odists[i] {
					t.Fatalf("%s engine knn %q rank %d: %v, oracle %v", tag, q, i, ns[i].Distance, odists[i])
				}
			}
		}
	}
	check("static", queries)

	// Interleave adds, deletes and forced compactions, keeping the cluster,
	// the monolithic engine and the oracle in lockstep.
	for i := 0; i < 120; i++ {
		v := fmt.Sprintf("mut%03d", i)
		id, err := c.Coord.Add(ctx, v, i%5)
		if err != nil {
			t.Fatalf("add %q: %v", v, err)
		}
		engID, err := eng.Add(v, i%5)
		if err != nil {
			t.Fatal(err)
		}
		if engID != id {
			t.Fatalf("ID drift: cluster minted %d, engine %d", id, engID)
		}
		o.Add(id, v, i%5)
		if i%3 == 0 {
			victim := uint64(i * 7 % 1000)
			delC, err := c.Coord.Delete(ctx, victim)
			if err != nil {
				t.Fatalf("delete %d: %v", victim, err)
			}
			delE, err := eng.Delete(victim)
			if err != nil {
				t.Fatal(err)
			}
			if delC != delE {
				t.Fatalf("delete %d: cluster applied=%v, engine applied=%v", victim, delC, delE)
			}
			if delC {
				o.Delete(victim)
			}
		}
		if i == 60 {
			if err := c.Coord.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			eng.Compact()
		}
	}
	if err := c.Coord.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	eng.Compact()

	check("mutated", append(queries, "mut005", "mut119"))

	size, err := c.Coord.Size(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if size != o.Size() {
		t.Fatalf("cluster live size %d, oracle %d", size, o.Size())
	}
	if got := eng.Info().CorpusSize; got != o.Size() {
		t.Fatalf("engine live size %d, oracle %d", got, o.Size())
	}
	elems, err := c.Coord.Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ids, values, olabels := o.Live()
	if len(elems) != len(ids) {
		t.Fatalf("cluster dump has %d elements, oracle %d", len(elems), len(ids))
	}
	for i, e := range elems {
		if e.ID != ids[i] || e.Value != values[i] || e.Label != olabels[i] {
			t.Fatalf("dump row %d: got (%d,%q,%d), oracle (%d,%q,%d)",
				i, e.ID, e.Value, e.Label, ids[i], values[i], olabels[i])
		}
	}
}

// TestClusterInfoTopology sanity-checks the /healthz view of a freshly
// seeded cluster: correct placement dimensions, every replica healthy, the
// minted-ID watermark at the corpus size.
func TestClusterInfoTopology(t *testing.T) {
	d := dataset.Spanish(100, 2)
	c := Start(t, Config{Nodes: 2, Shards: 4, Replicas: 2}, d.Strings, nil)
	info := c.Coord.Info()
	if info.Shards != 4 || info.Replicas != 2 || len(info.Nodes) != 2 {
		t.Fatalf("topology %d shards / %d replicas / %d nodes, want 4/2/2",
			info.Shards, info.Replicas, len(info.Nodes))
	}
	if !info.Healthy {
		t.Fatalf("fresh cluster reports unhealthy: %+v", info.ReplicaHealth)
	}
	if len(info.ReplicaHealth) != 8 {
		t.Fatalf("%d replica rows, want 8", len(info.ReplicaHealth))
	}
	for _, rh := range info.ReplicaHealth {
		if !rh.Healthy || rh.Stale || rh.Ejections != 0 {
			t.Fatalf("fresh replica unhealthy: %+v", rh)
		}
	}
	if info.NextID != 100 {
		t.Fatalf("next ID %d, want 100", info.NextID)
	}
	if info.RangeWidth != 25 {
		t.Fatalf("range width %d, want 25 (ceil(100/4))", info.RangeWidth)
	}
}
