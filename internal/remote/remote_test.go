package remote

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ced/internal/dataset"
	"ced/internal/metric"
	"ced/internal/shard"
)

// TestWireBoundRoundTrip is the property behind the request-scoped pruning
// radius: every legal bound survives the wire encoding exactly, +Inf maps
// through the negative sentinel, and any negative wire value decodes to
// unbounded — so a decoding mistake can only ever loosen the bound, which
// the BoundedKSearcher contract tolerates by construction.
func TestWireBoundRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		b := rng.Float64() * 2
		if got := fromWireBound(wireBound(b)); got != b {
			t.Fatalf("bound %v round-tripped to %v", b, got)
		}
		if wireBound(b) < 0 {
			t.Fatalf("finite bound %v encoded to the unbounded sentinel", b)
		}
	}
	if got := fromWireBound(wireBound(math.Inf(1))); !math.IsInf(got, 1) {
		t.Fatalf("+Inf round-tripped to %v", got)
	}
	for _, w := range []float64{-1, -0.5, -1e9} {
		if got := fromWireBound(w); !math.IsInf(got, 1) {
			t.Fatalf("negative wire bound %v decoded to %v, want +Inf", w, got)
		}
	}
	if got := fromWireBound(wireBound(0)); got != 0 {
		t.Fatalf("zero bound round-tripped to %v", got)
	}
}

// TestRemoteKNNBoundedMatchesLocal pins the transport to the in-process
// seam: for random queries, ks and bounds, a slot served over HTTP must
// return exactly the hits AND the work accounting of the same single-shard
// set queried locally — the wire adds latency, never a different answer.
func TestRemoteKNNBoundedMatchesLocal(t *testing.T) {
	d := dataset.Spanish(150, 5)
	m := metric.Contextual()
	build, err := shard.StandardBuild("linear", m, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	elems := make([]shard.Element, len(d.Strings))
	for i, v := range d.Strings {
		elems[i] = shard.Element{ID: uint64(i), Value: v}
	}
	local, err := shard.NewFromElements(elems, false, shard.Config{
		Shards: 1, Metric: m, Build: build, Algorithm: "linear",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardServer(ServerConfig{Metric: m, Algorithm: "linear", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{})
	ctx := context.Background()
	if err := cl.Seed(ctx, "dC", false, elems); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 80; i++ {
		q := d.Strings[rng.Intn(len(d.Strings))]
		if rng.Intn(2) == 0 {
			q += string(rune('a' + rng.Intn(26)))
		}
		k := 1 + rng.Intn(8)
		bound := math.Inf(1)
		if rng.Intn(2) == 0 {
			bound = rng.Float64()
		}
		gotHits, gotStats, err := cl.KNearestBounded(ctx, q, k, bound)
		if err != nil {
			t.Fatalf("remote knn %q k=%d bound=%v: %v", q, k, bound, err)
		}
		wantHits, wantStats := local.KNearestBounded([]rune(q), k, bound)
		if len(gotHits) != len(wantHits) {
			t.Fatalf("knn %q k=%d bound=%v: %d remote hits, %d local", q, k, bound, len(gotHits), len(wantHits))
		}
		for j := range gotHits {
			if gotHits[j] != wantHits[j] {
				t.Fatalf("knn %q k=%d bound=%v rank %d: remote %+v, local %+v",
					q, k, bound, j, gotHits[j], wantHits[j])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("knn %q k=%d bound=%v: remote stats %+v, local %+v", q, k, bound, gotStats, wantStats)
		}
	}

	// The mutate surface must agree too: idempotent re-delivery, tombstone
	// semantics, dump content.
	if applied, _, err := cl.Add(ctx, shard.Element{ID: 150, Value: "nuevo"}); err != nil || !applied {
		t.Fatalf("add: applied=%v err=%v", applied, err)
	}
	if applied, _, err := cl.Add(ctx, shard.Element{ID: 150, Value: "nuevo"}); err != nil || applied {
		t.Fatalf("re-delivered add: applied=%v err=%v (want idempotent no-op)", applied, err)
	}
	if applied, _, err := cl.Delete(ctx, 150); err != nil || !applied {
		t.Fatalf("delete: applied=%v err=%v", applied, err)
	}
	if applied, _, err := cl.Add(ctx, shard.Element{ID: 150, Value: "nuevo"}); err != nil || applied {
		t.Fatalf("add of tombstoned ID: applied=%v err=%v (dead IDs must not resurrect)", applied, err)
	}
	info, err := cl.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != len(elems) || info.Metric != "dC" || info.Algorithm != "linear" {
		t.Fatalf("slot info %+v", info)
	}
	_, dumped, err := cl.Dump(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != len(elems) {
		t.Fatalf("dump has %d elements, want %d", len(dumped), len(elems))
	}
}

// TestShardServerRejectsMetricMismatch: a coordinator seeding a node that
// serves a different distance must be refused loudly — a mixed-metric
// cluster would silently break exactness.
func TestShardServerRejectsMetricMismatch(t *testing.T) {
	srv, err := NewShardServer(ServerConfig{Metric: metric.Contextual(), Algorithm: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Retries: -1})
	err = cl.Seed(context.Background(), "dE", false, []shard.Element{{ID: 0, Value: "x"}})
	var api *apiError
	if !errors.As(err, &api) || api.status != http.StatusConflict {
		t.Fatalf("mismatched seed returned %v, want HTTP 409", err)
	}
}

func infoHandler(body string, hook func() (handled bool, status int)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil {
			if handled, status := hook(); handled {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(status)
				_, _ = w.Write([]byte(`{"error":"injected"}`))
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	})
}

const slotInfoBody = `{"metric":"dC","algorithm":"linear","labelled":false,"size":3,"next_id":3}`

// TestClientRetriesTransientFailures: 5xx responses retry up to the budget
// with backoff, and a later success wins.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(infoHandler(slotInfoBody, func() (bool, int) {
		return calls.Add(1) <= 2, http.StatusInternalServerError
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Retries: 2, Backoff: time.Millisecond})
	info, err := cl.Info(context.Background())
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if info.Size != 3 {
		t.Fatalf("unexpected payload: %+v", info)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + 1 success)", got)
	}
}

// TestClientDoesNotRetryClientErrors: a 4xx is the server's considered
// answer; retrying cannot change it and must not happen.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(infoHandler(slotInfoBody, func() (bool, int) {
		calls.Add(1)
		return true, http.StatusNotFound
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Retries: 3, Backoff: time.Millisecond})
	_, err := cl.Info(context.Background())
	var api *apiError
	if !errors.As(err, &api) || api.status != http.StatusNotFound {
		t.Fatalf("got %v, want a 404 apiError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", got)
	}
}

// TestClientTimeoutBoundsHangingServer: each attempt is cut at the
// per-attempt timeout, the retry budget stays bounded, and the total call
// time is attempts x timeout plus backoff — not forever.
func TestClientTimeoutBoundsHangingServer(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-r.Context().Done()
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond})
	start := time.Now()
	_, err := cl.Info(context.Background())
	if err == nil {
		t.Fatal("hanging server produced a successful call")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded call took %v", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (1 + 1 retry)", got)
	}
}

// TestClientRetriesTruncatedResponse: a connection cut mid-body is
// transient and retries.
func TestClientRetriesTruncatedResponse(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", "512") // promise more than we send
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"metric":"dC"`))
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(slotInfoBody))
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Retries: 2, Backoff: time.Millisecond})
	info, err := cl.Info(context.Background())
	if err != nil {
		t.Fatalf("truncated-then-healthy call failed: %v", err)
	}
	if info.Size != 3 || calls.Load() != 2 {
		t.Fatalf("info %+v after %d calls, want size 3 after 2", info, calls.Load())
	}
}

// TestClientHonoursContextCancellation: a cancelled context stops the
// retry loop immediately (the coordinator cancels hedged losers this way).
func TestClientHonoursContextCancellation(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hs.Close()
	cl := NewClient(hs.URL, 0, ClientConfig{Timeout: 10 * time.Second, Retries: 5})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Info(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled call succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled call did not return")
	}
}
