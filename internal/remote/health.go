package remote

import (
	"sort"
	"sync"
	"time"
)

// replica is one (logical shard, node) placement with its health state. The
// coordinator routes queries only to non-ejected replicas; a replica that
// misses a replicated write while ejected (or fails one) is additionally
// marked stale, and a stale replica is never readmitted until a re-sync
// reseeds it from a healthy peer — that invariant is what keeps every
// served answer exact under churn.
type replica struct {
	node   int // index into the coordinator's node list
	shard  int // logical shard this replica carries
	client *Client

	mu           sync.Mutex
	consecFails  int
	ejected      bool
	stale        bool
	ejections    uint64
	readmissions uint64
	lastErr      string
	lastChange   time.Time
}

// healthy reports whether the replica is in the query rotation.
func (r *replica) healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.ejected
}

// usable reports whether the replica may serve an exact answer under the
// circuit breaker with the given cooldown: a closed (healthy) replica
// always; an open one — ejected but clean — only once its cooldown has
// elapsed, which moves it to half-open and lets trial queries through. A
// negative cooldown disables the open window entirely (every ejected-clean
// replica is immediately half-open — the pure last-resort policy). Stale
// replicas are never usable: they may have missed writes, and one
// approximate answer would void the cluster's guarantee.
func (r *replica) usable(cooldown time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stale {
		return false
	}
	if !r.ejected {
		return true
	}
	return cooldown < 0 || time.Since(r.lastChange) >= cooldown
}

// recordSuccess clears the failure streak. A half-open replica that just
// served a successful trial closes its breaker (readmits) on the spot —
// but only if it is still clean; a stale replica's readmission must go
// through the probe path's re-sync, whatever it answers in the meantime.
func (r *replica) recordSuccess() {
	r.mu.Lock()
	r.consecFails = 0
	r.lastErr = ""
	if r.ejected && !r.stale {
		r.ejected = false
		r.readmissions++
		r.lastChange = time.Now()
	}
	r.mu.Unlock()
}

// recordFailure notes a failed call; after threshold consecutive failures
// the replica is ejected. A failure while already ejected re-arms the
// breaker cooldown — a failed half-open trial re-opens the breaker for a
// full cooldown window instead of letting trials hammer a sick node. It
// reports whether this call ejected the replica.
func (r *replica) recordFailure(err error, threshold int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	r.lastErr = err.Error()
	if r.ejected {
		r.lastChange = time.Now()
		return false
	}
	if r.consecFails >= threshold {
		r.ejected = true
		r.ejections++
		r.lastChange = time.Now()
		return true
	}
	return false
}

// markStale flags the replica as having missed (or possibly missed) a
// replicated write; only a re-sync clears it. A stale replica is always
// ejected too — it must not serve queries.
func (r *replica) markStale() {
	r.mu.Lock()
	r.stale = true
	if !r.ejected {
		r.ejected = true
		r.ejections++
		r.lastChange = time.Now()
	}
	r.mu.Unlock()
}

// clearStale marks a completed re-sync.
func (r *replica) clearStale() {
	r.mu.Lock()
	r.stale = false
	r.mu.Unlock()
}

// readmit returns the replica to the query rotation (probe path only; the
// caller has verified liveness and, if it was stale, completed a re-sync).
func (r *replica) readmit() {
	r.mu.Lock()
	if r.ejected {
		r.ejected = false
		r.consecFails = 0
		r.readmissions++
		r.lastChange = time.Now()
	}
	r.mu.Unlock()
}

// isEjected and isStale are snapshot reads for the probe loop.
func (r *replica) isEjected() bool { r.mu.Lock(); defer r.mu.Unlock(); return r.ejected }
func (r *replica) isStale() bool   { r.mu.Lock(); defer r.mu.Unlock(); return r.stale }

// Breaker state names as reported in ReplicaHealth.
const (
	BreakerClosed   = "closed"    // healthy, in the query rotation
	BreakerOpen     = "open"      // ejected, failing fast until the cooldown elapses
	BreakerHalfOpen = "half-open" // ejected but accepting trial queries
	BreakerStale    = "stale"     // ejected and missing writes; only a re-sync reopens it
)

// ReplicaHealth is one replica's state in the coordinator's /healthz view.
type ReplicaHealth struct {
	Node                string `json:"node"`
	Shard               int    `json:"shard"`
	Healthy             bool   `json:"healthy"`
	Stale               bool   `json:"stale"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Ejections           uint64 `json:"ejections"`
	Readmissions        uint64 `json:"readmissions"`
	LastError           string `json:"last_error,omitempty"`
}

// snapshot captures the replica's health for reporting; cooldown is the
// coordinator's breaker cooldown, needed to tell open from half-open.
func (r *replica) snapshot(nodeURL string, cooldown time.Duration) ReplicaHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	breaker := BreakerClosed
	switch {
	case r.stale:
		breaker = BreakerStale
	case r.ejected && cooldown >= 0 && time.Since(r.lastChange) < cooldown:
		breaker = BreakerOpen
	case r.ejected:
		breaker = BreakerHalfOpen
	}
	return ReplicaHealth{
		Node:                nodeURL,
		Shard:               r.shard,
		Healthy:             !r.ejected,
		Stale:               r.stale,
		Breaker:             breaker,
		ConsecutiveFailures: r.consecFails,
		Ejections:           r.ejections,
		Readmissions:        r.readmissions,
		LastError:           r.lastErr,
	}
}

// latencyRing keeps the most recent successful per-shard request latencies
// for the adaptive hedge delay: the coordinator hedges once a request
// outlives a percentile of this window.
type latencyRing struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // total recorded; min(n, len) are valid
}

func (l *latencyRing) record(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%len(l.samples)] = d
	l.n++
	l.mu.Unlock()
}

// percentile returns the p-th (0 < p < 1) latency of the window, or 0 when
// fewer than 16 samples have been seen (callers fall back to their cap).
func (l *latencyRing) percentile(p float64) time.Duration {
	l.mu.Lock()
	n := min(l.n, len(l.samples))
	if n < 16 {
		l.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, l.samples[:n])
	l.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(p * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}
