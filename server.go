package ced

import (
	"context"
	"io"
	"net/http"
	"time"

	"ced/internal/blob"
	"ced/internal/serve"
)

// Neighbor is one k-NN answer element returned by the serving layer. It
// aliases the internal serve type so Server results marshal to the same
// JSON the HTTP API emits.
type Neighbor = serve.Neighbor

// Prediction is one nearest-neighbour classification answer from the
// serving layer (the paper's §4.4 decision rule applied to a single query).
type Prediction = serve.Prediction

// ServerInfo is the engine snapshot reported by Server.Info and the
// /healthz endpoint: index and metric identity, corpus size, request and
// cache counters.
type ServerInfo = serve.Info

// ServerConfig configures NewServer. The zero value serves the corpus
// through a 16-pivot LAESA index with the dC,h heuristic metric, all CPUs
// in the batch worker pool, and a 4096-entry query cache.
type ServerConfig struct {
	// Algorithm selects the search index: "laesa" (default), "aesa"
	// (full-matrix preprocessing — quadratic, ablation-grade corpus
	// sizes), "vptree", "bktree" and "trie" (both require Metric dE) or
	// "linear". These are the metric-space structures compared in the
	// paper's §4.3 plus the classic edit-distance-specific dictionary
	// structures.
	Algorithm string
	// Metric is the distance to serve; nil defaults to
	// ContextualHeuristic (dC,h), the variant the paper uses at scale.
	Metric Metric
	// Pivots is the LAESA base-prototype count; <= 0 defaults to 16.
	Pivots int
	// Seed drives randomised index construction; a fixed seed rebuilds an
	// identical index.
	Seed int64
	// Workers sizes the batch worker pool; <= 0 uses all CPUs.
	Workers int
	// BuildWorkers sizes the index-construction worker pool: preprocessing
	// distance evaluations (the LAESA pivot matrix, VP-tree partitions,
	// BK-tree levels) fan over this many goroutines, which bounds the
	// server's cold-start time; <= 0 uses all CPUs. The built index is
	// bit-identical for any value.
	BuildWorkers int
	// CacheSize bounds the LRU cache of query→rune decodings; < 0
	// disables the cache and 0 defaults to 4096 entries.
	CacheSize int
	// Shards partitions the corpus across this many independent indexes
	// (round-robin by stable element ID): queries fan out and merge with
	// a shared pruning bound, and Add/Delete mutate the live set with
	// epoch-based compaction. <= 0 means 1 — a single shard answers
	// exactly like the monolithic engine.
	Shards int
	// CompactThreshold is the per-shard delta-plus-tombstone size that
	// schedules a background compaction after mutations; <= 0 uses the
	// default (256).
	CompactThreshold int
	// SnapshotPath names the server-side file the /snapshot/save and
	// /snapshot/load HTTP endpoints use; empty disables them. (The Go
	// methods SaveSnapshot and LoadSnapshot take an io.Writer/io.Reader
	// and work regardless.)
	SnapshotPath string
	// Store names a durable blob store for incremental snapshots: a local
	// directory path or an http(s):// object-server URL (cedserve -store).
	// When set, /snapshot/save publishes a consistent manifest-addressed
	// snapshot into the store — re-uploading only the shards that changed
	// since the last one — and /snapshot/load cold-starts from the newest
	// manifest without recomputing a single index-build distance. Takes
	// precedence over SnapshotPath for the HTTP endpoints.
	Store string
	// SnapshotEvery triggers a background store snapshot once that many
	// mutations have accumulated since the last one (single-flight, with
	// a retry cool-down after failures); <= 0 leaves snapshots manual.
	// Requires Store.
	SnapshotEvery int
	// MaxInFlight bounds concurrently executing query requests (admission
	// control): excess requests wait up to MaxQueueWaitMS for a slot and
	// are then shed with 429 + Retry-After. /healthz, mutations and
	// snapshots stay exempt. <= 0 disables admission control.
	MaxInFlight int
	// MaxQueueWaitMS is the shedding queue wait in milliseconds; <= 0
	// uses the default (100ms). Ignored without MaxInFlight.
	MaxQueueWaitMS int
	// RetryAfter is the Retry-After hint (seconds) sent with a 429; <= 0
	// defaults to 1. Ignored without MaxInFlight.
	RetryAfter int
}

// Server is the embeddable batch-serving engine behind cmd/cedserve: a
// corpus, a metric-space index and a worker pool, exposed both as Go
// methods and as an http.Handler. Construction costs the index
// preprocessing distances (pivots×n for LAESA, O(n log n) for a VP-tree);
// every later query reports how many distance computations it spent — the
// cost measure of the paper's Figures 3 and 4. All methods are safe for
// concurrent use.
type Server struct {
	eng *serve.Engine
}

// NewServer builds a serving engine over corpus. When the corpus is
// labelled (Dataset.Labelled), the classify endpoints are enabled.
func NewServer(corpus *Dataset, cfg ServerConfig) (*Server, error) {
	m := cfg.Metric
	if m == nil {
		m = ContextualHeuristic()
	}
	cache := cfg.CacheSize
	switch {
	case cache == 0:
		cache = 4096
	case cache < 0:
		cache = 0
	}
	var store blob.Store
	if cfg.Store != "" {
		var err error
		if store, err = blob.Open(cfg.Store); err != nil {
			return nil, err
		}
	}
	eng, err := serve.New(corpus.Strings, corpus.Labels, internalMetric(m), serve.Config{
		Algorithm:        cfg.Algorithm,
		Pivots:           cfg.Pivots,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		BuildWorkers:     cfg.BuildWorkers,
		CacheSize:        cache,
		Shards:           cfg.Shards,
		CompactThreshold: cfg.CompactThreshold,
		Store:            store,
		SnapshotEvery:    cfg.SnapshotEvery,
		MaxInFlight:      cfg.MaxInFlight,
		MaxQueueWait:     time.Duration(cfg.MaxQueueWaitMS) * time.Millisecond,
		RetryAfter:       cfg.RetryAfter,
	})
	if err != nil {
		return nil, err
	}
	eng.SetSnapshotPath(cfg.SnapshotPath)
	return &Server{eng: eng}, nil
}

// Handler returns the JSON HTTP API over this server: /healthz, /distance,
// /knn, /classify and their /batch variants. See cmd/cedserve for the
// standalone daemon and README.md for the wire format.
func (s *Server) Handler() http.Handler { return serve.NewHandler(s.eng) }

// Info returns the current engine snapshot (corpus size, request count,
// cache hit statistics).
func (s *Server) Info() ServerInfo { return s.eng.Info() }

// Distance computes the served metric between a and b, returning the value
// and the number of distance computations spent (always 1).
func (s *Server) Distance(a, b string) (float64, int) {
	d, st := s.eng.Distance(a, b)
	return d, st.Computations
}

// BatchDistance evaluates the served metric on every pair using the worker
// pool, returning one distance per pair (in order) and the total
// computation count. For a one-off batch without a Server, use the
// package-level BatchDistance.
func (s *Server) BatchDistance(pairs []Pair) ([]float64, int) {
	ds, st := s.eng.BatchDistance(pairs)
	return ds, st.Computations
}

// BatchDistanceCtx is BatchDistance with cooperative cancellation: the
// striped workers poll ctx between pairs and a cancelled batch returns
// ctx's error with no output.
func (s *Server) BatchDistanceCtx(ctx context.Context, pairs []Pair) ([]float64, int, error) {
	ds, st, err := s.eng.BatchDistanceCtx(ctx, pairs)
	return ds, st.Computations, err
}

// KNearest returns the k nearest corpus elements to q, closest first, with
// the distance computations the index spent. The HTTP handler additionally
// reports how many of those evaluations each bound-ladder rung rejected;
// see the "rejections" object in the response metadata.
func (s *Server) KNearest(q string, k int) ([]Neighbor, int, error) {
	ns, st, err := s.eng.KNearest(q, k)
	return ns, st.Computations, err
}

// KNearestCtx is KNearest with cooperative cancellation: the index scans
// poll ctx every few candidates, a cancelled query stops computing and
// returns ctx's error (context.Canceled or context.DeadlineExceeded) with
// the distance evaluations spent before the stop, and an uncancelled query
// is bit-identical to KNearest.
func (s *Server) KNearestCtx(ctx context.Context, q string, k int) ([]Neighbor, int, error) {
	ns, st, err := s.eng.KNearestCtx(ctx, q, k)
	return ns, st.Computations, err
}

// Radius returns every corpus element within distance r of q (inclusive),
// sorted by (distance, ID), with the distance computations spent. Both the
// result set and the pruning behaviour are deterministic: r itself bounds
// every shard, so there is no run-to-run variance to account for.
func (s *Server) Radius(q string, r float64) ([]Neighbor, int, error) {
	ns, st, err := s.eng.Radius(q, r)
	return ns, st.Computations, err
}

// RadiusCtx is Radius with cooperative cancellation (see KNearestCtx).
func (s *Server) RadiusCtx(ctx context.Context, q string, r float64) ([]Neighbor, int, error) {
	ns, st, err := s.eng.RadiusCtx(ctx, q, r)
	return ns, st.Computations, err
}

// Classify labels q with the class of its nearest corpus element. The
// corpus passed to NewServer must have been labelled.
func (s *Server) Classify(q string) (Prediction, int, error) {
	p, st, err := s.eng.Classify(q)
	return p, st.Computations, err
}

// ClassifyCtx is Classify with cooperative cancellation (see KNearestCtx).
func (s *Server) ClassifyCtx(ctx context.Context, q string) (Prediction, int, error) {
	p, st, err := s.eng.ClassifyCtx(ctx, q)
	return p, st.Computations, err
}

// Add inserts value into the live corpus and returns its stable element ID
// (reported as Neighbor.Index from then on; the initial corpus keeps its
// positions as IDs). label is recorded when the corpus is labelled and
// ignored otherwise. The element is visible to every query issued after
// Add returns; a background compaction later folds it into its shard's
// base index without ever blocking queries. Trie-backed servers are
// immutable (the trie collapses duplicate strings) and return an error.
func (s *Server) Add(value string, label int) (uint64, error) { return s.eng.Add(value, label) }

// Delete removes the element with the given ID from the live corpus,
// reporting whether it was present. Deleted IDs are never reused and never
// resurface in query results. Trie-backed servers are immutable and return
// an error.
func (s *Server) Delete(id uint64) (bool, error) { return s.eng.Delete(id) }

// SaveSnapshot writes the whole sharded corpus — per shard: the base
// index, the uncompacted delta and the tombstones — to w. LoadSnapshot
// (or cedserve -load-snapshot) restores it without recomputing a single
// index-build distance.
func (s *Server) SaveSnapshot(w io.Writer) error { return s.eng.SaveSnapshot(w) }

// LoadSnapshot atomically replaces the live corpus with the set saved in r
// and reports the restored live size: queries in flight finish against the
// old corpus, queries issued afterwards see the new one, and none block.
// The snapshot's metric and index algorithm must match this server's.
func (s *Server) LoadSnapshot(r io.Reader) (int, error) { return s.eng.LoadSnapshot(r) }

// SaveToStore publishes one consistent incremental snapshot of the live
// corpus into the configured blob store (ServerConfig.Store): per-shard
// objects are uploaded first — skipping shards unchanged since the last
// save — and a small versioned manifest last, so a crash at any instant
// leaves the previous snapshot fully loadable.
func (s *Server) SaveToStore(ctx context.Context) error {
	_, err := s.eng.SaveToStore(ctx)
	return err
}

// LoadFromStore atomically replaces the live corpus with the newest
// loadable snapshot in the configured blob store and reports the restored
// live size. Object integrity is verified against the manifest's SHA-256
// digests; a torn newest manifest falls back to the previous one, and a
// manifest written by a newer binary is rejected outright.
func (s *Server) LoadFromStore(ctx context.Context) (int, error) { return s.eng.LoadFromStore(ctx) }

// WaitSnapshots blocks until every in-flight background snapshot
// (ServerConfig.SnapshotEvery) has finished — the shutdown drain.
func (s *Server) WaitSnapshots() { s.eng.WaitSnapshots() }

// Compact synchronously folds every shard's mutation overlay (delta
// entries and tombstones) into its base index. Background compaction runs
// on its own once a shard's overlay outgrows the configured threshold;
// Compact is for callers that want a minimal snapshot or a fully indexed
// corpus right now.
func (s *Server) Compact() { s.eng.Compact() }
