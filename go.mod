module ced

go 1.24
