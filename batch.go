package ced

import (
	"ced/internal/bulk"
	"ced/internal/metric"
	"ced/internal/serve"
)

// Pair is one query pair for the batch-distance APIs (BatchDistance,
// Server.BatchDistance, and the /distance/batch wire format, where it
// marshals as {"a": ..., "b": ...}).
type Pair = serve.Pair

// BatchDistance computes m.Distance for every pair in parallel, returning
// one distance per pair in input order. It uses the same striped worker
// pool as DistanceMatrix (worker w handles pairs w, w+workers, w+2·workers,
// …), with one private metric session per worker — steady-state
// evaluations through the contextual kernels allocate only the rune
// decodings of the pair — and no locking on the hot path. workers <= 0
// uses all CPUs.
//
// This is the bulk primitive behind the /distance/batch endpoint of
// cmd/cedserve; use a Server instead when the same strings recur across
// calls and the query cache pays off.
func BatchDistance(pairs []Pair, m Metric, workers int) []float64 {
	out := make([]float64, len(pairs))
	bulk.New(internalMetric(m)).Fan(len(pairs), workers, func(s metric.Metric, i int) {
		out[i] = s.Distance([]rune(pairs[i].A), []rune(pairs[i].B))
	})
	return out
}
