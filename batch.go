package ced

import (
	"ced/internal/bulk"
	"ced/internal/metric"
	"ced/internal/serve"
)

// Pair is one query pair for the batch-distance APIs (BatchDistance,
// Server.BatchDistance, and the /distance/batch wire format, where it
// marshals as {"a": ..., "b": ...}).
type Pair = serve.Pair

// BatchDistance computes m.Distance for every pair in parallel, returning
// one distance per pair in input order. The pair list is split into
// contiguous per-worker chunks, each evaluated through a private metric
// session — steady-state evaluations through the contextual kernels
// allocate only the rune decodings of the pair — with no locking on the
// hot path. workers <= 0 uses all CPUs.
//
// Within a chunk, consecutive pairs sharing the same A — the shape of a
// spell-check batch, one query against many candidates — are resolved as
// one run through the session's multi-candidate kernel (metric.Batcher):
// the query is decoded once and its Myers pattern table built once for
// the whole run. Values are bit-identical to per-pair calls (the Batcher
// contract), so the grouping never changes results, only their cost.
//
// This is the bulk primitive behind the /distance/batch endpoint of
// cmd/cedserve; use a Server instead when the same strings recur across
// calls and the query cache pays off.
func BatchDistance(pairs []Pair, m Metric, workers int) []float64 {
	out := make([]float64, len(pairs))
	bulk.New(internalMetric(m)).FanChunks(len(pairs), workers, func(s metric.Metric, lo, hi int) {
		b, ok := s.(metric.Batcher)
		if !ok {
			for i := lo; i < hi; i++ {
				out[i] = s.Distance([]rune(pairs[i].A), []rune(pairs[i].B))
			}
			return
		}
		var bs [][]rune
		for rlo := lo; rlo < hi; {
			rhi := rlo + 1
			for rhi < hi && pairs[rhi].A == pairs[rlo].A {
				rhi++
			}
			a := []rune(pairs[rlo].A)
			if rhi == rlo+1 {
				out[rlo] = s.Distance(a, []rune(pairs[rlo].B))
			} else {
				bs = bs[:0]
				for i := rlo; i < rhi; i++ {
					bs = append(bs, []rune(pairs[i].B))
				}
				b.DistanceBatch(a, bs, out[rlo:rhi])
			}
			rlo = rhi
		}
	})
	return out
}
