// Package ced implements the contextual normalised edit distance of
// de la Higuera and Micó ("A Contextual Normalised Edit Distance", ICDE
// 2008), together with the full experimental apparatus of the paper: the
// normalised edit distances it compares against, LAESA-family
// nearest-neighbour search, synthetic versions of the paper's three
// datasets, and nearest-neighbour classification.
//
// The contextual distance dC divides the cost of each edit operation by the
// length of the string it is applied to, so edits on long strings cost less
// than edits on short ones. Unlike most length normalisations, dC is a true
// metric (it satisfies the triangle inequality), which makes it usable with
// metric-space search structures:
//
//	m := ced.Contextual()
//	d := m.Distance("ababa", "baab") // 8/15
//
// For bulk work there is a quadratic-time heuristic, ced.ContextualHeuristic,
// that equals the exact distance on the vast majority of pairs and never
// undershoots it.
//
// Strings are compared symbol-by-symbol as []rune; multi-byte UTF-8 symbols
// (ñ, á, …) count as single symbols.
package ced

import (
	"ced/internal/core"
	"ced/internal/metric"
)

// Metric is a distance between strings. All implementations returned by
// this package are stateless and safe for concurrent use.
type Metric interface {
	// Name returns the paper's notation for the distance (e.g. "dC,h").
	Name() string
	// Distance returns the distance between a and b, comparing them as
	// sequences of runes.
	Distance(a, b string) float64
}

// stringMetric adapts an internal rune-based metric to the string API.
type stringMetric struct {
	m metric.Metric
}

func (s stringMetric) Name() string { return s.m.Name() }

func (s stringMetric) Distance(a, b string) float64 {
	return s.m.Distance([]rune(a), []rune(b))
}

// Contextual returns the exact contextual normalised edit distance dC
// (Algorithm 1 of the paper, pruned to the heuristic-derived edit-length
// band: O(|x|·|y|·kmax) time with kmax ≤ |x|+|y|, allocation-free at
// steady state). It is a metric.
func Contextual() Metric { return stringMetric{metric.Contextual()} }

// ContextualBounded evaluates the exact contextual distance under a
// cutoff. It returns (dC(a, b), true) whenever dC(a, b) ≤ cutoff;
// otherwise it may abandon the evaluation as soon as the distance is
// provably above the cutoff, returning (v, false) with an upper bound
// v satisfying cutoff < v and dC(a, b) ≤ v. Use it to resolve "is this
// candidate within radius r?" questions at a fraction of a full
// evaluation; the nearest-neighbour indexes in this package already do so
// internally when searching under dC.
func ContextualBounded(a, b string, cutoff float64) (float64, bool) {
	return core.DistanceBounded([]rune(a), []rune(b), cutoff)
}

// ContextualHeuristic returns the quadratic-time heuristic dC,h (§4.1 of
// the paper). It never undershoots dC and equals it on ~90% of pairs; the
// paper uses it for all large experiments.
func ContextualHeuristic() Metric { return stringMetric{metric.ContextualHeuristic()} }

// Levenshtein returns the classical (unit-cost) edit distance dE.
func Levenshtein() Metric { return stringMetric{metric.Levenshtein()} }

// YujianBo returns the Yujian–Bo normalised metric
// dYB = 2·dE/(|x|+|y|+dE) (TPAMI 2007).
func YujianBo() Metric { return stringMetric{metric.YujianBo()} }

// MarzalVidal returns the exact Marzal–Vidal normalised edit distance
// dMV = min over alignment paths of weight/length (TPAMI 1993). It is not
// proven to be a metric for unit costs.
func MarzalVidal() Metric { return stringMetric{metric.MarzalVidal()} }

// MaxNormalised returns dmax = dE/max(|x|,|y|). Not a metric, but the best
// classifier in the paper's Table 2.
func MaxNormalised() Metric { return stringMetric{metric.MaxNormalised()} }

// MinNormalised returns dmin = dE/min(|x|,|y|). Not a metric.
func MinNormalised() Metric { return stringMetric{metric.MinNormalised()} }

// SumNormalised returns dsum = dE/(|x|+|y|). Not a metric.
func SumNormalised() Metric { return stringMetric{metric.SumNormalised()} }

// ByName resolves a distance by name. Canonical names are those of the
// paper ("dE", "dC", "dC,h", "dYB", "dMV", "dmax", "dmin", "dsum"); short
// aliases like "ch" or "yb" are accepted, case-insensitively.
func ByName(name string) (Metric, error) {
	m, err := metric.ByName(name)
	if err != nil {
		return nil, err
	}
	return stringMetric{m}, nil
}

// Names returns the canonical names accepted by ByName, sorted.
func Names() []string { return metric.Names() }

// Decomposition describes the optimal edit path found by the contextual
// distance: how many operations it used and how they split into
// insertions, substitutions and deletions (performed in that order — the
// paper's Lemma 1 shows insert-first is always optimal).
type Decomposition struct {
	// Distance is the contextual distance realised by the path.
	Distance float64
	// Operations is the number of unit edit operations on the path.
	Operations int
	// Insertions, Substitutions and Deletions sum to Operations.
	Insertions    int
	Substitutions int
	Deletions     int
	// Exact reports whether the exact algorithm produced the value (true)
	// or the heuristic did (false).
	Exact bool
}

// ContextualDecompose runs the exact algorithm and reports the optimal
// path decomposition alongside the distance.
func ContextualDecompose(a, b string) Decomposition {
	return toDecomposition(core.Compute([]rune(a), []rune(b)))
}

// ContextualHeuristicDecompose reports the decomposition evaluated by the
// heuristic (whose operation count is always the plain edit distance).
func ContextualHeuristicDecompose(a, b string) Decomposition {
	return toDecomposition(core.HeuristicCompute([]rune(a), []rune(b)))
}

func toDecomposition(r core.Result) Decomposition {
	return Decomposition{
		Distance:      r.Distance,
		Operations:    r.K,
		Insertions:    r.Insertions,
		Substitutions: r.Substitutions,
		Deletions:     r.Deletions,
		Exact:         r.Exact,
	}
}

// internalMetric recovers the rune-based metric behind a facade Metric, or
// wraps a custom implementation.
func internalMetric(m Metric) metric.Metric {
	if sm, ok := m.(stringMetric); ok {
		return sm.m
	}
	return metric.New(m.Name(), func(a, b []rune) float64 {
		return m.Distance(string(a), string(b))
	})
}
