package ced

import (
	"bytes"
	"testing"
)

func shardedTestDataset() *Dataset {
	return &Dataset{
		Strings: []string{"casa", "cosa", "caso", "masa", "pasa", "queso", "gato", "gatos"},
		Labels:  []int{0, 0, 0, 1, 1, 2, 3, 3},
	}
}

func TestShardedIndexLifecycle(t *testing.T) {
	d := shardedTestDataset()
	ix, err := NewShardedIndex(d, Contextual(), ShardedIndexConfig{Shards: 3, Pivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(d.Strings) || ix.Shards() != 3 || ix.Algorithm() != "laesa" {
		t.Fatalf("shape: len=%d shards=%d algo=%q", ix.Len(), ix.Shards(), ix.Algorithm())
	}

	// Sharded answers match the monolithic index distance for distance.
	mono := NewLAESA(d.Strings, Contextual(), 3)
	for _, q := range []string{"cas", "gatito", "zzz"} {
		want := mono.KNearest(q, 4)
		got := ix.KNearest(q, 4)
		if len(got) != len(want) {
			t.Fatalf("query %q: %d results vs %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Distance != want[i].Distance {
				t.Errorf("query %q rank %d: %v vs %v", q, i, got[i].Distance, want[i].Distance)
			}
		}
	}

	id := ix.Add("gatita", 3)
	if id != uint64(len(d.Strings)) {
		t.Fatalf("minted ID = %d", id)
	}
	r, ok := ix.Nearest("gatita")
	if !ok || r.ID != id || r.Distance != 0 || r.Label != 3 {
		t.Fatalf("nearest after add = %+v", r)
	}
	p, err := ix.Classify("gatita")
	if err != nil || p.Label != 3 {
		t.Fatalf("classify = %+v err=%v", p, err)
	}
	if !ix.Delete(0) || ix.Delete(0) {
		t.Fatal("delete semantics broken")
	}
	if ix.Len() != len(d.Strings) {
		t.Fatalf("live len = %d", ix.Len())
	}
	hits, err := ix.Radius("casa", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.ID == 0 {
			t.Fatalf("deleted element in radius hits: %+v", hits)
		}
	}

	// Snapshot round-trip: compaction first for a delta-free save, then
	// reload and compare answers.
	ix.Compact()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShardedIndex(&buf, Contextual(), ShardedIndexConfig{Pivots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() || loaded.Shards() != ix.Shards() {
		t.Fatalf("loaded shape: len=%d shards=%d", loaded.Len(), loaded.Shards())
	}
	for _, q := range []string{"cas", "gatita", "queso"} {
		want := ix.KNearest(q, 3)
		got := loaded.KNearest(q, 3)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("query %q rank %d: %+v vs %+v", q, i, got[i], want[i])
			}
		}
	}
}

func TestShardedIndexValidation(t *testing.T) {
	d := shardedTestDataset()
	if _, err := NewShardedIndex(d, Contextual(), ShardedIndexConfig{Algorithm: "bktree"}); err == nil {
		t.Error("bktree with dC should fail")
	}
	if _, err := NewShardedIndex(d, Contextual(), ShardedIndexConfig{Algorithm: "quadtree"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if _, err := NewShardedIndex(d, nil, ShardedIndexConfig{}); err == nil {
		t.Error("nil metric should fail")
	}
}

func TestLoadIndexAllKinds(t *testing.T) {
	d := shardedTestDataset()
	for _, algo := range []string{"laesa", "vptree", "bktree"} {
		m := Metric(Contextual())
		if algo == "bktree" {
			m = Levenshtein()
		}
		ix, err := NewIndex(algo, d.Strings, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		loaded, err := LoadIndex(algo, &buf, m)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if loaded.Len() != ix.Len() || loaded.Algorithm() != algo {
			t.Fatalf("%s: loaded %q with %d elements", algo, loaded.Algorithm(), loaded.Len())
		}
		for _, q := range []string{"cas", "gat"} {
			want := ix.Nearest(q)
			got := loaded.Nearest(q)
			if got.Value != want.Value || got.Distance != want.Distance {
				t.Errorf("%s query %q: %+v vs %+v", algo, q, got, want)
			}
		}
	}
	// The structure-only indexes refuse to save.
	lin := NewLinear(d.Strings, Contextual())
	if err := lin.Save(&bytes.Buffer{}); err == nil {
		t.Error("linear Save should fail")
	}
	if _, err := LoadIndex("trie", &bytes.Buffer{}, Levenshtein()); err == nil {
		t.Error("trie LoadIndex should fail")
	}
}
