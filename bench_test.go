package ced_test

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the design choices called out in DESIGN.md.
// Benchmark sizes are trimmed versions of the cedexp defaults so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/cedexp runs the
// full-scale versions and EXPERIMENTS.md records those results.

import (
	"testing"

	"ced"
	"ced/internal/dataset"
	"ced/internal/editdist"
	"ced/internal/experiments"
	"ced/internal/metric"
	"ced/internal/search"
)

// --- Figures 1 and 2: distance histograms ---

func BenchmarkFigure1HeuristicHistograms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig1(experiments.Fig1Config{Words: 150, Seed: 1}, nil)
	}
}

func BenchmarkFigure2GeneHistograms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig2(experiments.Fig2Config{Genes: 24, Seed: 2}, nil)
	}
}

// --- Table 1: intrinsic dimensionality ---

func BenchmarkTable1IntrinsicDimensionality(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunTable1(experiments.Table1Config{
			SpanishWords: 120, DigitCount: 40, GeneCount: 20, Seed: 3,
		}, nil)
	}
}

// --- Figures 3 and 4: LAESA pivot sweeps ---

func BenchmarkFigure3LAESASpanish(b *testing.B) {
	cfg := experiments.Fig3Config{Sweep: experiments.SweepConfig{
		TrainSize:   200,
		QueryCount:  30,
		Pivots:      []int{2, 25, 50, 100},
		Repetitions: 1,
		Seed:        4,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig3(cfg, nil)
	}
}

func BenchmarkFigure4LAESADigits(b *testing.B) {
	cfg := experiments.Fig4Config{Sweep: experiments.SweepConfig{
		TrainSize:   100,
		QueryCount:  15,
		Pivots:      []int{2, 25, 50},
		Repetitions: 1,
		Seed:        5,
		Metrics: []metric.Metric{ // dMV excluded: cubic per call dominates at bench scale
			metric.YujianBo(),
			metric.ContextualHeuristic(),
			metric.MaxNormalised(),
			metric.Levenshtein(),
		},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunFig4(cfg, nil)
	}
}

// --- Table 2: digit classification ---

func BenchmarkTable2DigitClassification(b *testing.B) {
	cfg := experiments.Table2Config{
		TrainPerClass: 5,
		TestCount:     40,
		Pivots:        15,
		Repetitions:   1,
		Seed:          6,
		Metrics: []metric.Metric{
			metric.YujianBo(),
			metric.ContextualHeuristic(),
			metric.MaxNormalised(),
			metric.Levenshtein(),
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.1: heuristic agreement ---

func BenchmarkHeuristicGap(b *testing.B) {
	cfg := experiments.GapConfig{
		SpanishWords: 80, DigitCount: 24, GeneCount: 12, MaxPairs: 500, Seed: 7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunGap(cfg, nil)
	}
}

// --- Ablations: distance kernels across string lengths ---

func distPairs(b *testing.B, kind string, n int) ([]rune, []rune) {
	b.Helper()
	switch kind {
	case "words":
		d := dataset.Spanish(2, 42)
		return d.Runes()[0], d.Runes()[1]
	case "contours":
		d := dataset.Digits(dataset.DigitsConfig{Count: 2, Grid: n}, 42)
		return d.Runes()[0], d.Runes()[1]
	default: // dna
		d := dataset.DNA(dataset.DNAConfig{Count: 2, Families: 2, MinLen: n, MaxLen: n}, 42)
		return d.Runes()[0], d.Runes()[1]
	}
}

func BenchmarkContextualExactWords(b *testing.B) { benchMetric(b, metric.Contextual(), "words", 0) }
func BenchmarkContextualExactContours(b *testing.B) {
	benchMetric(b, metric.Contextual(), "contours", 32)
}
func BenchmarkContextualExactDNA200(b *testing.B) { benchMetric(b, metric.Contextual(), "dna", 200) }
func BenchmarkContextualHeuristicWords(b *testing.B) {
	benchMetric(b, metric.ContextualHeuristic(), "words", 0)
}
func BenchmarkContextualHeuristicContours(b *testing.B) {
	benchMetric(b, metric.ContextualHeuristic(), "contours", 32)
}
func BenchmarkContextualHeuristicDNA200(b *testing.B) {
	benchMetric(b, metric.ContextualHeuristic(), "dna", 200)
}
func BenchmarkLevenshteinWords(b *testing.B)    { benchMetric(b, metric.Levenshtein(), "words", 0) }
func BenchmarkLevenshteinContours(b *testing.B) { benchMetric(b, metric.Levenshtein(), "contours", 32) }
func BenchmarkLevenshteinDNA200(b *testing.B)   { benchMetric(b, metric.Levenshtein(), "dna", 200) }
func BenchmarkMarzalVidalWords(b *testing.B)    { benchMetric(b, metric.MarzalVidal(), "words", 0) }
func BenchmarkMarzalVidalContours(b *testing.B) { benchMetric(b, metric.MarzalVidal(), "contours", 32) }
func BenchmarkYujianBoWords(b *testing.B)       { benchMetric(b, metric.YujianBo(), "words", 0) }
func BenchmarkYujianBoContours(b *testing.B)    { benchMetric(b, metric.YujianBo(), "contours", 32) }

func benchMetric(b *testing.B, m metric.Metric, kind string, n int) {
	x, y := distPairs(b, kind, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

// --- Ablation: cutoff-bounded exact kernel (BENCH_kernel.json) ---

// BenchmarkContextualBoundedDNA200 measures core.DistanceBounded under a
// cutoff of half the true distance — the regime a metric-space searcher
// with a good best-so-far puts the kernel in. The k-band proves the
// distance exceeds the cutoff after only the quadratic heuristic, so the
// cubic sweep is abandoned; compare with BenchmarkContextualExactDNA200.
func BenchmarkContextualBoundedDNA200(b *testing.B) {
	x, y := distPairs(b, "dna", 200)
	m := metric.Contextual().(metric.BoundedMetric)
	cutoff := m.Distance(x, y) / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DistanceBounded(x, y, cutoff)
	}
}

// BenchmarkLAESAExactContextual runs LAESA queries under the *exact* dC —
// viable only because eliminated candidates now cost a bounded evaluation
// instead of a full cubic one (NewLAESA passes the pruning radius as the
// cutoff). The comps/query metric is unchanged by bounding; ns/op is what
// the cutoff buys.
func BenchmarkLAESAExactContextual(b *testing.B) {
	corpus := dataset.Spanish(300, 18).Runes()
	queries := dataset.PerturbQueries(dataset.Spanish(300, 18), 40, 2, 19).Runes()
	la := search.NewLAESA(corpus, metric.Contextual(), 30, search.MaxSum, 20)
	comps := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps += la.Search(queries[i%len(queries)]).Computations
	}
	b.ReportMetric(float64(comps)/float64(b.N), "comps/query")
}

// --- Ablations: pivot selection strategy and searcher structure ---

func BenchmarkAblationPivotSelection(b *testing.B) {
	corpus := dataset.Spanish(400, 9).Runes()
	queries := dataset.PerturbQueries(dataset.Spanish(400, 9), 40, 2, 10).Runes()
	m := metric.ContextualHeuristic()
	for _, strat := range []search.PivotStrategy{search.MaxSum, search.MaxMin, search.Random} {
		b.Run(strat.String(), func(b *testing.B) {
			la := search.NewLAESA(corpus, m, 30, strat, 11)
			comps := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				comps += la.Search(q).Computations
			}
			b.ReportMetric(float64(comps)/float64(b.N), "comps/query")
		})
	}
}

func BenchmarkAblationSearchers(b *testing.B) {
	corpus := dataset.Spanish(400, 12).Runes()
	queries := dataset.PerturbQueries(dataset.Spanish(400, 12), 40, 2, 13).Runes()
	m := metric.ContextualHeuristic()
	searchers := []search.Searcher{
		search.NewLinear(corpus, m),
		search.NewLAESA(corpus, m, 30, search.MaxSum, 14),
		search.NewAESA(corpus, m),
		search.NewVPTree(corpus, m, 15),
	}
	for _, s := range searchers {
		b.Run(s.Name(), func(b *testing.B) {
			comps := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				comps += s.Search(q).Computations
			}
			b.ReportMetric(float64(comps)/float64(b.N), "comps/query")
		})
	}
}

// --- Ablation: Levenshtein engines ---

func BenchmarkLevenshteinEngines(b *testing.B) {
	x, y := distPairs(b, "contours", 32)
	b.Run("two-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			editdist.Distance(x, y)
		}
	})
	b.Run("myers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			editdist.Myers(x, y)
		}
	})
	b.Run("banded-k16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			editdist.Bounded(x, y, 16)
		}
	})
}

// --- End-to-end facade benches ---

func BenchmarkFacadeLAESAQuery(b *testing.B) {
	dict := ced.GenerateSpanish(2000, 16)
	ix := ced.NewLAESA(dict.Strings, ced.ContextualHeuristic(), 50)
	queries := ced.PerturbQueries(dict, 64, 2, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Nearest(queries.Strings[i%len(queries.Strings)])
	}
}

func BenchmarkFacadeContextual(b *testing.B) {
	m := ced.Contextual()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Distance("contextual", "normalised")
	}
}

// --- Ablation: windowed contextual variants (the §5 complexity answer) ---

func BenchmarkContextualWindowed(b *testing.B) {
	x, y := distPairs(b, "dna", 200)
	for _, w := range []int{0, 4, 16, 64} {
		m := metric.ContextualWindowed(w)
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Distance(x, y)
			}
		})
	}
}

// --- Bulk evaluation layer: DistanceMatrix steady state (ISSUE 3) ---

// 96 Spanish-like words = 4,560 exact-dC evaluations per op. The acceptance
// measure is allocs/op divided by the evaluation count: the session-threaded
// fan keeps it at zero per evaluation (the ~n fixed allocations are the
// result matrix and rune decodings). BENCH_build.json records the medians.
func BenchmarkDistanceMatrixContextual(b *testing.B) {
	data := dataset.Spanish(96, 9).Strings
	m := ced.Contextual()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ced.DistanceMatrix(data, m, 0)
	}
}

// --- Batched evaluation kernels (ISSUE 10) ---

// 4,096 dE pairs per op, one query string recurring per block of 64 — the
// shape of a spell-check /distance/batch call. The win over the seed is the
// dE session: each worker answers through the bit-parallel Myers kernel
// with pooled scratch instead of allocating a fresh O(|a|·|b|) DP table per
// pair. BENCH_kernel.json records the medians.
func BenchmarkBatchDistanceDE(b *testing.B) {
	data := dataset.Spanish(128, 17).Strings
	pairs := make([]ced.Pair, 4096)
	for i := range pairs {
		pairs[i] = ced.Pair{A: data[(i/64)%len(data)], B: data[(i*7+3)%len(data)]}
	}
	m := ced.Levenshtein()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ced.BatchDistance(pairs, m, 0)
	}
}
